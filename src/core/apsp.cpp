#include "core/apsp.h"

#include <memory>

#include "core/apsp_common.h"
#include "core/ooc_boundary.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"

namespace gapsp::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kBlockedFloydWarshall:
      return "blocked-floyd-warshall";
    case Algorithm::kJohnson:
      return "johnson";
    case Algorithm::kBoundary:
      return "boundary";
  }
  return "?";
}

const char* sssp_kernel_name(SsspKernel k) {
  switch (k) {
    case SsspKernel::kNearFar:
      return "near-far";
    case SsspKernel::kDeltaStepping:
      return "delta-stepping";
    case SsspKernel::kBellmanFord:
      return "bellman-ford";
  }
  return "?";
}

namespace {

ApspResult dispatch(const graph::CsrGraph& g, const ApspOptions& opts,
                    DistStore& store, Algorithm algo) {
  switch (algo) {
    case Algorithm::kBlockedFloydWarshall:
      return ooc_floyd_warshall(g, opts, store);
    case Algorithm::kJohnson:
      return ooc_johnson(g, opts, store);
    case Algorithm::kBoundary:
      return ooc_boundary(g, opts, store);
    case Algorithm::kAuto:
      break;
  }
  throw Error("selector returned kAuto");
}

}  // namespace

ApspResult solve_apsp(const graph::CsrGraph& g, const ApspOptions& opts,
                      DistStore& store, SelectorReport* report,
                      const SelectorOptions& sel) {
  GAPSP_CHECK(g.num_vertices() > 0, "empty graph");
  Algorithm algo = opts.algorithm;
  if (algo == Algorithm::kAuto) {
    const SelectorReport r = select_algorithm(g, opts, sel);
    if (report != nullptr) *report = r;
    algo = r.chosen;
  }

  // Graceful degradation on capacity exhaustion: an OOM (from the allocator
  // or an injected alloc fault) shrinks the plan and re-runs — first by
  // giving up transfer overlap (frees the double buffers), then by
  // pretending the device is smaller so the blocking gets finer. The fault
  // injector is materialized once and shared across attempts so scripted
  // one-shot faults stay consumed instead of re-firing every retry.
  ApspOptions run_opts = opts;
  std::unique_ptr<sim::FaultInjector> shared_injector;
  if (opts.faults != nullptr && opts.fault_injector == nullptr) {
    shared_injector = std::make_unique<sim::FaultInjector>(*opts.faults);
    run_opts.faults = nullptr;
    run_opts.fault_injector = shared_injector.get();
  }
  int degradations = 0;
  for (;;) {
    try {
      ApspResult result = dispatch(g, run_opts, store, algo);
      result.metrics.degradations = degradations;
      // The device metrics only saw the final attempt; the injector counted
      // every fault across all of them (e.g. the alloc fault that triggered
      // a degradation).
      if (run_opts.fault_injector != nullptr) {
        result.metrics.faults_injected = run_opts.fault_injector->injected();
      }
      return result;
    } catch (const sim::OomError&) {
      if (degradations >= opts.max_degradations) throw;
    } catch (const sim::FaultError& e) {
      if (e.op() != sim::FaultOp::kAlloc ||
          degradations >= opts.max_degradations) {
        throw;
      }
    }
    ++degradations;
    if (run_opts.overlap_transfers) {
      run_opts.overlap_transfers = false;
    } else {
      run_opts.device.memory_bytes =
          run_opts.device.memory_bytes / 4 * 3;
    }
  }
}

}  // namespace gapsp::core
