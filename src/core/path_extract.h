// Shortest-path reconstruction from a completed distance matrix.
//
// The out-of-core solvers produce distances only (like the paper); storing a
// predecessor matrix would double the already output-dominated footprint.
// Instead, paths are reconstructed on demand by distance backtracking: a
// vertex w is the predecessor of v on a shortest u→v path iff
// dist(u,w) + weight(w,v) == dist(u,v). Each query costs
// O(path_length · max_in_degree) distance-store lookups and needs only the
// transposed graph — no extra device or store memory.
#pragma once

#include <vector>

#include "core/apsp_options.h"
#include "core/dist_store.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

class PathExtractor {
 public:
  /// `store`/`result` must come from a completed solve over `g`. The graph
  /// is transposed once at construction.
  PathExtractor(const graph::CsrGraph& g, const DistStore& store,
                const ApspResult& result);

  /// Shortest distance u → v (kInf when unreachable).
  dist_t distance(vidx_t u, vidx_t v) const;

  /// Vertex sequence of one shortest u → v path, inclusive of both
  /// endpoints. Returns {u} when u == v and {} when v is unreachable.
  std::vector<vidx_t> path(vidx_t u, vidx_t v) const;

  /// Sum of edge weights along `path` as stored in the graph; kInf if the
  /// sequence is not a valid walk. Exposed for verification.
  dist_t walk_length(const std::vector<vidx_t>& path) const;

 private:
  const graph::CsrGraph& g_;
  graph::CsrGraph reverse_;
  const DistStore& store_;
  std::vector<vidx_t> perm_;  // empty = identity
};

}  // namespace gapsp::core
