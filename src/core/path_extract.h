// Shortest-path reconstruction from a completed distance matrix.
//
// The out-of-core solvers produce distances only (like the paper); storing a
// predecessor matrix would double the already output-dominated footprint.
// Instead, paths are reconstructed on demand by distance backtracking: a
// vertex w is the predecessor of v on a shortest u→v path iff
// dist(u,w) + weight(w,v) == dist(u,v). Each query costs
// O(path_length · max_in_degree) distance lookups — served through a
// BlockCache tile front (core/block_cache.h) rather than one
// DistStore::at() seek+read per element, since backtracking hammers row u
// of the store and, on a file-backed or compressed store, per-element
// reads pay a seek (or a whole tile decompression) each.
#pragma once

#include <vector>

#include "core/apsp_options.h"
#include "core/block_cache.h"
#include "core/dist_store.h"
#include "core/store_integrity.h"
#include "core/tile_reader.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

class PathExtractor {
 public:
  /// `store`/`result` must come from a completed solve over `g`. The graph
  /// is transposed once at construction. `cache_bytes` bounds the tile
  /// cache; the tile side follows the store's native tiling when it has one
  /// (GAPSPZ1), the checksum sidecar's when one is supplied, 256 otherwise.
  /// Tile reads run through a CheckedTileReader (retry + optional sidecar
  /// verification); an unserveable tile surfaces as core::TileError from
  /// distance()/path().
  PathExtractor(const graph::CsrGraph& g, const DistStore& store,
                const ApspResult& result,
                std::size_t cache_bytes = 8u << 20,
                StoreChecksums checksums = {},
                TileReaderOptions reader_opt = {});

  /// Shortest distance u → v (kInf when unreachable).
  dist_t distance(vidx_t u, vidx_t v) const;

  /// Vertex sequence of one shortest u → v path, inclusive of both
  /// endpoints. Returns {u} when u == v and {} when v is unreachable.
  std::vector<vidx_t> path(vidx_t u, vidx_t v) const;

  /// Sum of edge weights along `path` as stored in the graph; kInf if the
  /// sequence is not a valid walk. Exposed for verification.
  dist_t walk_length(const std::vector<vidx_t>& path) const;

 private:
  BlockData fetch(vidx_t block_row, vidx_t block_col) const;

  const graph::CsrGraph& g_;
  graph::CsrGraph reverse_;
  const DistStore& store_;
  std::vector<vidx_t> perm_;  // empty = identity
  vidx_t block_ = 0;          // cache tile side
  vidx_t num_blocks_ = 0;
  BlockData inf_tile_;  // shared all-kInf tile (charges no cache bytes)
  mutable BlockCache cache_;
  mutable CheckedTileReader reader_;  // serialized, retried, verified reads
};

}  // namespace gapsp::core
