#include "core/apsp_common.h"

#include <algorithm>
#include <vector>

namespace gapsp::core {

void weight_block(const graph::CsrGraph& g, vidx_t row0, vidx_t col0,
                  vidx_t rows, vidx_t cols, dist_t* dst, std::size_t ld) {
  for (vidx_t r = 0; r < rows; ++r) {
    dist_t* row = dst + static_cast<std::size_t>(r) * ld;
    std::fill_n(row, cols, kInf);
    const vidx_t u = row0 + r;
    if (u >= col0 && u < col0 + cols) row[u - col0] = 0;
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const vidx_t v = nbr[i];
      if (v >= col0 && v < col0 + cols) {
        row[v - col0] = std::min(row[v - col0], wts[i]);
      }
    }
  }
}

void init_weight_matrix(const graph::CsrGraph& g, DistStore& store) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(store.n() == n, "store size does not match graph");
  std::vector<dist_t> row(static_cast<std::size_t>(n));
  for (vidx_t u = 0; u < n; ++u) {
    weight_block(g, u, 0, 1, n, row.data(), row.size());
    store.write_block(u, 0, 1, n, row.data(), row.size());
  }
}

void configure_kernels(sim::Device& dev, const ApspOptions& opts) {
  KernelConfig cfg;
  cfg.variant = opts.kernel_variant;
  cfg.threads = opts.kernel_threads;
  set_kernel_config(cfg);
  dev.set_kernel_threads(opts.kernel_threads);
  dev.note_kernel_variant(kernel_variant_name(resolved_kernel_variant()));
}

ApspMetrics metrics_from_device(const sim::Device& dev, double wall_seconds) {
  const sim::DeviceMetrics dm = dev.metrics();
  ApspMetrics m;
  m.sim_seconds = dm.sim_seconds;
  m.wall_seconds = wall_seconds;
  m.kernel_seconds = dm.kernel_seconds;
  m.transfer_seconds = dm.transfer_seconds;
  m.hidden_transfer_seconds = dm.hidden_transfer_seconds;
  m.exposed_transfer_seconds = dm.exposed_transfer_seconds;
  m.bytes_h2d = dm.bytes_h2d;
  m.bytes_d2h = dm.bytes_d2h;
  m.transfers_h2d = dm.transfers_h2d;
  m.transfers_d2h = dm.transfers_d2h;
  m.bytes_h2d_raw = dm.bytes_h2d_raw;
  m.bytes_h2d_wire = dm.bytes_h2d_wire;
  m.bytes_d2h_raw = dm.bytes_d2h_raw;
  m.bytes_d2h_wire = dm.bytes_d2h_wire;
  m.decode_seconds = dm.decode_seconds;
  m.decodes = dm.decodes;
  m.kernels = dm.kernels;
  m.child_kernels = dm.child_kernels;
  m.total_ops = dm.total_ops;
  m.device_peak_bytes = dm.peak_bytes;
  m.pinned_peak_bytes = dm.pinned_peak_bytes;
  m.faults_injected = dm.faults_injected;
  m.transfer_retries = dm.transfer_retries;
  m.kernel_retries = dm.kernel_retries;
  m.decode_retries = dm.decode_retries;
  m.retry_backoff_seconds = dm.retry_backoff_seconds;
  m.kernel_variant = dm.kernel_variant;
  return m;
}

DeviceGraph upload_graph(sim::Device& dev, sim::StreamId stream,
                         const graph::CsrGraph& g) {
  DeviceGraph dg;
  dg.offsets = dev.alloc<eidx_t>(g.offsets().size(), "csr offsets");
  dg.targets = dev.alloc<vidx_t>(
      static_cast<std::size_t>(g.num_edges()), "csr targets");
  dg.weights = dev.alloc<dist_t>(
      static_cast<std::size_t>(g.num_edges()), "csr weights");
  dev.memcpy_h2d(stream, dg.offsets.data(), g.offsets().data(),
                 dg.offsets.bytes());
  if (g.num_edges() > 0) {
    dev.memcpy_h2d(stream, dg.targets.data(), g.targets().data(),
                   dg.targets.bytes());
    dev.memcpy_h2d(stream, dg.weights.data(), g.edge_weights().data(),
                   dg.weights.bytes());
  }
  return dg;
}

}  // namespace gapsp::core
