#include "core/scrub.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/compressed_store.h"
#include "core/dist_store.h"
#include "core/store_integrity.h"
#include "core/tile_reader.h"
#include "graph/csr_graph.h"
#include "sssp/dijkstra.h"

namespace gapsp::core {

namespace {

constexpr std::size_t kMaxReportedTiles = 64;

void note_damage(ScrubReport& report, vidx_t bi, vidx_t bj,
                 const std::string& reason) {
  ++report.corrupt;
  if (report.damaged.size() < kMaxReportedTiles) {
    report.damaged.push_back(DamagedTile{bi, bj, false, reason});
  }
}

void mark_repaired(ScrubReport& report) {
  report.repaired = report.corrupt;
  for (DamagedTile& t : report.damaged) t.repaired = true;
}

/// Scans every tile of `store` through `reader`, recording damage.
/// Returns the damaged tile keys (bi * tiles_per_side + bj).
std::unordered_set<std::uint64_t> scan_tiles(CheckedTileReader& reader,
                                             const DistStore& store,
                                             vidx_t tile, ScrubReport& report) {
  std::unordered_set<std::uint64_t> damaged;
  const vidx_t n = store.n();
  const vidx_t tps = (n + tile - 1) / tile;
  std::vector<dist_t> buf(static_cast<std::size_t>(tile) * tile);
  for (vidx_t bi = 0; bi < tps; ++bi) {
    const vidx_t row0 = bi * tile;
    const vidx_t rows = std::min<vidx_t>(tile, n - row0);
    for (vidx_t bj = 0; bj < tps; ++bj) {
      const vidx_t col0 = bj * tile;
      const vidx_t cols = std::min<vidx_t>(tile, n - col0);
      ++report.tiles;
      try {
        reader.read_tile(bi, bj, row0, col0, rows, cols, buf.data());
      } catch (const TileError& e) {
        note_damage(report, bi, bj, e.what());
        damaged.insert(static_cast<std::uint64_t>(bi) * tps + bj);
      }
    }
  }
  return damaged;
}

/// Serves damaged tiles from the repair source and everything else from the
/// underlying (partially corrupt) store. write_compressed_store walks the
/// source in store-tile-aligned rectangles, so forwarding by tile key is
/// exact.
class PatchedSource final : public DistStore {
 public:
  PatchedSource(const DistStore& base, vidx_t tile,
                std::unordered_set<std::uint64_t> damaged,
                const TileRepairFn& repair)
      : DistStore(base.n()), base_(base), tile_(tile),
        damaged_(std::move(damaged)), repair_(repair) {}

  void write_block(vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*,
                   std::size_t) override {
    throw IoError("PatchedSource is read-only");
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    GAPSP_CHECK(row0 % tile_ == 0 && col0 % tile_ == 0 && rows <= tile_ &&
                    cols <= tile_,
                "patched scrub source requires tile-aligned reads");
    const vidx_t tps = (n() + tile_ - 1) / tile_;
    const std::uint64_t key =
        static_cast<std::uint64_t>(row0 / tile_) * tps + col0 / tile_;
    if (damaged_.count(key) == 0) {
      base_.read_block(row0, col0, rows, cols, dst, dst_ld);
      return;
    }
    const std::vector<dist_t> fixed = repair_(row0, col0, rows, cols);
    GAPSP_CHECK(fixed.size() == static_cast<std::size_t>(rows) * cols,
                "repair source returned a wrong-sized tile");
    for (vidx_t r = 0; r < rows; ++r) {
      std::copy_n(fixed.data() + static_cast<std::size_t>(r) * cols, cols,
                  dst + static_cast<std::size_t>(r) * dst_ld);
    }
  }

  vidx_t tile_size() const override { return tile_; }

 private:
  const DistStore& base_;
  vidx_t tile_;
  std::unordered_set<std::uint64_t> damaged_;
  const TileRepairFn& repair_;
};

ScrubReport scrub_raw(const std::string& path, const ScrubOptions& opt) {
  ScrubReport report;
  StoreChecksums sums;
  bool sidecar_corrupt = false;
  try {
    report.sums_present =
        load_store_checksums(checksum_sidecar_path(path), sums);
  } catch (const CorruptError&) {
    // A rotten sidecar is itself damage: scan unverified, then rebuild it
    // below when asked to.
    sidecar_corrupt = true;
  }

  std::unordered_set<std::uint64_t> damaged;
  vidx_t n = 0;
  {
    auto store = open_file_store(path);
    n = store->n();
    report.n = n;
    report.tile = sums.present() ? sums.tile : opt.tile;
    TileReaderOptions ropt;
    ropt.retry = opt.retry;
    ropt.faults = opt.faults;
    CheckedTileReader reader(*store, sums, ropt);
    damaged = scan_tiles(reader, *store, report.tile, report);
  }

  if (opt.repair && !damaged.empty()) {
    GAPSP_CHECK(static_cast<bool>(opt.repair_fn),
                "scrub repair requested without a repair source");
    // Adopt the existing file read-write (same size, no truncation) and
    // overwrite exactly the damaged tiles with recomputed truth.
    auto store = make_file_store(n, path, /*keep_file=*/true);
    const vidx_t tile = report.tile;
    const vidx_t tps = (n + tile - 1) / tile;
    for (const std::uint64_t key : damaged) {
      const vidx_t bi = static_cast<vidx_t>(key / tps);
      const vidx_t bj = static_cast<vidx_t>(key % tps);
      const vidx_t row0 = bi * tile;
      const vidx_t col0 = bj * tile;
      const vidx_t rows = std::min<vidx_t>(tile, n - row0);
      const vidx_t cols = std::min<vidx_t>(tile, n - col0);
      const std::vector<dist_t> fixed = opt.repair_fn(row0, col0, rows, cols);
      GAPSP_CHECK(fixed.size() == static_cast<std::size_t>(rows) * cols,
                  "repair source returned a wrong-sized tile");
      store->write_block(row0, col0, rows, cols, fixed.data(), cols);
    }
    mark_repaired(report);
  }
  report.unrepaired = report.corrupt - report.repaired;

  // (Re)write the sidecar when asked, when repair touched the store, or
  // when the old sidecar was itself corrupt — but never over damage we did
  // not fix, which would launder corruption into "verified" data.
  const bool want_sums =
      opt.write_sums || sidecar_corrupt || report.repaired > 0;
  if (want_sums && report.unrepaired == 0) {
    auto store = open_file_store(path);
    const StoreChecksums fresh =
        compute_store_checksums(*store, report.tile);
    write_store_checksums(fresh, checksum_sidecar_path(path));
    report.sums_written = true;
  }
  return report;
}

ScrubReport scrub_z1(const std::string& path, const ScrubOptions& opt) {
  ScrubReport report;
  report.compressed = true;
  // Store-level validation (header + directory) happens at open; damage
  // there prevents the walk and propagates as CorruptError per contract.
  const CompressedStoreInfo info = compressed_store_info(path);
  report.n = info.n;
  report.tile = info.tile;

  auto store = open_compressed_store(path);
  TileReaderOptions ropt;
  ropt.retry = opt.retry;
  ropt.faults = opt.faults;
  // No sidecar: the z1 decoder verifies its own frame checksums.
  CheckedTileReader reader(*store, StoreChecksums{}, ropt);
  std::unordered_set<std::uint64_t> damaged =
      scan_tiles(reader, *store, report.tile, report);

  if (opt.repair && !damaged.empty()) {
    GAPSP_CHECK(static_cast<bool>(opt.repair_fn),
                "scrub repair requested without a repair source");
    const PatchedSource patched(*store, report.tile, std::move(damaged),
                                opt.repair_fn);
    // Atomic: the rebuilt store replaces `path` only once fully written;
    // our open handle keeps reading the old inode meanwhile.
    write_compressed_store(patched, path, report.tile);
    mark_repaired(report);
  }
  report.unrepaired = report.corrupt - report.repaired;
  return report;
}

}  // namespace

ScrubReport scrub_store(const std::string& path, const ScrubOptions& opt) {
  GAPSP_CHECK(!opt.repair || static_cast<bool>(opt.repair_fn),
              "scrub repair requested without a repair source");
  return is_compressed_store(path) ? scrub_z1(path, opt)
                                   : scrub_raw(path, opt);
}

TileRepairFn make_sssp_repair(const graph::CsrGraph& g,
                              std::vector<vidx_t> perm) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(perm.empty() || static_cast<vidx_t>(perm.size()) == n,
              "permutation size does not match the graph");
  // stored index = perm[vertex]  ⇒  vertex = inv[stored index]
  auto inv = std::make_shared<std::vector<vidx_t>>(n);
  if (perm.empty()) {
    for (vidx_t v = 0; v < n; ++v) (*inv)[v] = v;
  } else {
    for (vidx_t v = 0; v < n; ++v) (*inv)[perm[v]] = v;
  }
  return [&g, inv, n](vidx_t row0, vidx_t col0, vidx_t rows,
                      vidx_t cols) -> std::vector<dist_t> {
    std::vector<dist_t> out(static_cast<std::size_t>(rows) * cols);
    std::vector<dist_t> dist(static_cast<std::size_t>(n));
    for (vidx_t r = 0; r < rows; ++r) {
      sssp::dijkstra_into(g, (*inv)[row0 + r], dist);
      for (vidx_t c = 0; c < cols; ++c) {
        out[static_cast<std::size_t>(r) * cols + c] = dist[(*inv)[col0 + c]];
      }
    }
    return out;
  };
}

}  // namespace gapsp::core
