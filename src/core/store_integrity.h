// Checksum sidecar for raw (uncompressed) distance stores.
//
// A raw FileStore is n² little-endian dist_t values with no framing, so a
// flipped bit on disk silently becomes a wrong answer. The sidecar
// (`<store>.sum`, magic GAPSPSM1) records one FNV-1a checksum per
// tile×tile block of the store; the serving tier verifies each tile on the
// BlockCache miss path (core/tile_reader.h) and the scrubber
// (core/scrub.h) uses it to locate damage offline. GAPSPZ1 compressed
// stores already carry per-frame checksums and need no sidecar.
//
// Layout (little-endian):
//   bytes  0..7   magic "GAPSPSM1"
//   bytes  8..15  i64 n            (store dimension)
//   bytes 16..23  i64 tile         (checksum tile size)
//   bytes 24..31  i64 tiles_per_side
//   bytes 32..39  u64 fnv1a over the sums array bytes (self-check)
//   bytes 40..63  reserved, zero
//   then tiles_per_side² u64 tile checksums, row-major over the tile grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace gapsp::core {

class DistStore;

/// In-memory sidecar contents. Default-constructed = "no sidecar present";
/// readers then skip verification rather than failing.
struct StoreChecksums {
  vidx_t n = 0;
  vidx_t tile = 0;
  vidx_t tiles_per_side = 0;
  std::vector<std::uint64_t> sums;  ///< row-major tile grid

  bool present() const { return tile > 0 && !sums.empty(); }

  std::uint64_t tile_sum(vidx_t bi, vidx_t bj) const {
    return sums[static_cast<std::size_t>(bi) * tiles_per_side + bj];
  }
};

/// Checksum of one tile's row-major payload (FNV-1a over the raw bytes).
std::uint64_t tile_checksum(const dist_t* data, std::size_t elems);

/// `<store_path>.sum` — the sidecar lives next to the store it covers.
std::string checksum_sidecar_path(const std::string& store_path);

/// Reads every tile of `store` and computes the full checksum grid.
StoreChecksums compute_store_checksums(DistStore& store, vidx_t tile = 256);

/// Atomically writes the sidecar (tmp + rename). Throws IoError on failure.
void write_store_checksums(const StoreChecksums& sums, const std::string& path);

/// Loads a sidecar. Returns false (leaving `out` absent) when the file is
/// missing; throws CorruptError when the file exists but fails its own
/// self-check, and IoError on read failures.
bool load_store_checksums(const std::string& path, StoreChecksums& out);

}  // namespace gapsp::core
