// Row-range sharding of a solved distance store ("GAPSPSH1").
//
// One logical n×n matrix is too big for one process to serve at fleet
// scale: one QueryEngine means one block cache budget, one file descriptor,
// one failure domain. Sharding splits the kept store into row-range slices
// — shard K owns stored rows [row_begin, row_end) across all columns — so a
// router can put an independent engine (or a whole worker process,
// service/shard_router.h) in front of each slice. Row ranges align to the
// tile grid, so routing a query is one comparison on its stored row and a
// cache tile never straddles two shards.
//
// Both kept-store formats slice:
//   raw      — a shard file is a contiguous byte range of the row-major
//              matrix (rows are already adjacent on disk);
//   GAPSPZ1  — every tile has an independent directory entry, so a shard is
//              just a directory slice: the compressed frames are copied
//              verbatim, never recompressed.
//
// On-disk layout (same-machine binary, little-endian, like GAPSPCK1/Z1/SM1):
//
//   manifest `<store>.shards` (magic GAPSPSH1):
//     64-byte header: magic, i64 n, i64 tile, i64 num_shards,
//                     u64 flags (bit0 = compressed payloads),
//                     u64 fnv1a over the entry array, 8 reserved bytes
//     entries: num_shards × {i64 row_begin, i64 row_end, u64 bytes,
//                            u64 checksum}   (checksum = fnv1a over the
//                            whole shard file; bytes = its exact size)
//
//   shard file `<store>.shard.K` (magic GAPSPSD1):
//     64-byte header: magic, i64 n, i64 tile, i64 row_begin, i64 row_end,
//                     u64 flags (bit0 = compressed), u64 dir_checksum,
//                     8 reserved bytes
//     raw payload:  (row_end−row_begin)·n dist_t, row-major
//     z1 payload:   row_blocks×col_blocks × {u64 offset, u64 bytes}
//                   directory (bytes == 0 ⇒ all-kInf tile), then the z1
//                   frames; dir_checksum covers the directory array
//
// See DESIGN.md §15 for the serving architecture this feeds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dist_store.h"
#include "util/common.h"

namespace gapsp::core {

/// One shard's row range plus the integrity facts the manifest pins.
struct ShardRange {
  vidx_t row_begin = 0;  ///< first stored row owned by the shard
  vidx_t row_end = 0;    ///< one past the last owned row
  std::uint64_t bytes = 0;     ///< exact shard file size
  std::uint64_t checksum = 0;  ///< fnv1a over the whole shard file
};

/// In-memory manifest. Default-constructed = "not sharded".
struct ShardManifest {
  vidx_t n = 0;
  vidx_t tile = 0;  ///< routing granularity; every row range aligns to it
  bool compressed = false;  ///< shard payloads are z1 tile frames, not rows
  std::vector<ShardRange> shards;

  int num_shards() const { return static_cast<int>(shards.size()); }
  bool present() const { return n > 0 && !shards.empty(); }

  /// Shard owning `stored_row`, or -1 when the row is outside [0, n).
  /// Shards are contiguous and sorted, so this is a binary search.
  int shard_of_row(vidx_t stored_row) const;
};

/// `<store_path>.shards` — the manifest lives next to the store it slices.
std::string shard_manifest_path(const std::string& store_path);

/// `<store_path>.shard.K` — shard files live next to the store too.
std::string shard_file_path(const std::string& store_path, int shard);

/// Outcome of one sharding pass, for CLI/bench reporting.
struct ShardingStats {
  int shards = 0;
  bool compressed = false;
  std::uint64_t bytes_written = 0;  ///< shard files + manifest
  double seconds = 0.0;
};

/// Slices the kept store at `store_path` (raw or GAPSPZ1, auto-detected)
/// into `num_shards` row-range shard files plus a manifest, all next to the
/// store. Row ranges are balanced in whole tile rows with the remainder
/// spread over the leading shards (the last shard may be ragged). Atomic
/// per file (tmp + rename). Throws Error when num_shards exceeds the tile
/// row count (an empty shard could never serve a query), IoError/
/// CorruptError on store damage. Returns the written manifest.
ShardManifest shard_store_file(const std::string& store_path, int num_shards,
                               vidx_t tile = 256, ShardingStats* stats = nullptr);

/// Loads the manifest at `path`. Returns false (leaving `out` absent) when
/// the file is missing; throws CorruptError when it exists but fails its
/// self-checks, IoError on read failure.
bool load_shard_manifest(const std::string& path, ShardManifest& out);

/// Opens shard `k` of the sharded store as a read-only DistStore of the
/// *full* dimension n whose readable rows are exactly the shard's range:
/// read_block outside [row_begin, row_end) throws IoError — a routing bug
/// must surface as a typed error, never as a silently-synthesized kInf.
/// tile_size() reports the manifest tile for both payload formats so the
/// query engine's cache grid aligns to shard boundaries. With `verify` set
/// the shard file is checksummed against the manifest before serving and a
/// mismatch throws CorruptError.
std::unique_ptr<DistStore> open_shard_slice(const std::string& store_path,
                                            const ShardManifest& manifest,
                                            int k, bool verify = true);

}  // namespace gapsp::core
