// Portable int32 SIMD lane wrapper for the min-plus microkernels
// (DESIGN.md §12). Exactly one backend is active per translation unit:
//
//   AVX2    — 8 lanes, selected when the TU is compiled with -mavx2
//             (src/core/CMakeLists.txt builds kernel_engine_simd.cpp that
//             way when the compiler supports the flag; the runtime CPU check
//             lives in kernel_engine.cpp, outside the AVX2 TU).
//   NEON    — 4 lanes on AArch64/ARM builds.
//   autovec — a plain kWidth-element struct whose ops are fixed-trip-count
//             loops under `#pragma omp simd` (honored via -fopenmp-simd, no
//             OpenMP runtime); the compiler's auto-vectorizer does the rest.
//
// The API is the minimum the kernels need: unaligned load/store, scalar
// broadcast, lane-wise add and signed min. There is deliberately no masked
// or saturating form — kInf = INT32_MAX/4 guarantees that the sum of two
// in-range distances ([0, kInf]) cannot wrap, so an unreachable candidate
// (either operand == kInf) lands at >= kInf and the subsequent min against
// an accumulator that never exceeds kInf is a natural no-op. That is the
// branch-free saturation trick: no per-lane kInf test is ever needed.
#pragma once

#include "util/common.h"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace gapsp::core::lanes {

#if defined(__AVX2__)

inline constexpr int kWidth = 8;
inline constexpr const char* kIsa = "avx2";

using VI32 = __m256i;

inline VI32 load(const dist_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store(dist_t* p, VI32 v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline VI32 splat(dist_t x) { return _mm256_set1_epi32(x); }
inline VI32 add(VI32 a, VI32 b) { return _mm256_add_epi32(a, b); }
inline VI32 vmin(VI32 a, VI32 b) { return _mm256_min_epi32(a, b); }

#elif defined(__ARM_NEON)

inline constexpr int kWidth = 4;
inline constexpr const char* kIsa = "neon";

using VI32 = int32x4_t;

inline VI32 load(const dist_t* p) { return vld1q_s32(p); }
inline void store(dist_t* p, VI32 v) { vst1q_s32(p, v); }
inline VI32 splat(dist_t x) { return vdupq_n_s32(x); }
inline VI32 add(VI32 a, VI32 b) { return vaddq_s32(a, b); }
inline VI32 vmin(VI32 a, VI32 b) { return vminq_s32(a, b); }

#else

inline constexpr int kWidth = 8;
inline constexpr const char* kIsa = "autovec";

struct VI32 {
  dist_t lane[kWidth];
};

inline VI32 load(const dist_t* p) {
  VI32 v;
#pragma omp simd
  for (int i = 0; i < kWidth; ++i) v.lane[i] = p[i];
  return v;
}
inline void store(dist_t* p, VI32 v) {
#pragma omp simd
  for (int i = 0; i < kWidth; ++i) p[i] = v.lane[i];
}
inline VI32 splat(dist_t x) {
  VI32 v;
#pragma omp simd
  for (int i = 0; i < kWidth; ++i) v.lane[i] = x;
  return v;
}
inline VI32 add(VI32 a, VI32 b) {
  VI32 v;
#pragma omp simd
  for (int i = 0; i < kWidth; ++i) v.lane[i] = a.lane[i] + b.lane[i];
  return v;
}
inline VI32 vmin(VI32 a, VI32 b) {
  VI32 v;
#pragma omp simd
  for (int i = 0; i < kWidth; ++i) {
    v.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
  }
  return v;
}

#endif

}  // namespace gapsp::core::lanes
