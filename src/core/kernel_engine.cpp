#include "core/kernel_engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <vector>

#include "core/minplus.h"
#include "util/rng.h"

namespace gapsp::core {
namespace {

// Blocking parameters. kKTile keeps a strip of B rows hot while the output
// rows stream past; the register block holds a kRegRows×kRegCols patch of C
// in (vectorizable) locals across the whole k loop, so C is loaded and
// stored once per patch instead of once per k.
constexpr vidx_t kKTile = 64;
constexpr vidx_t kRowTile = 64;
constexpr int kRegRows = 4;
constexpr int kRegCols = 16;

std::mutex g_tune_mu;
std::atomic<KernelVariant> g_variant{KernelVariant::kAuto};
std::atomic<int> g_threads{0};
std::atomic<KernelVariant> g_autotuned{KernelVariant::kAuto};

// Per-variant host timings from the last autotune run, published under
// g_table_mu (the autotuner measures into locals first, so this lock never
// nests with g_tune_mu held by another thread's resolve path).
std::mutex g_table_mu;
KernelTuning g_tuning;

/// True when the simd/tensor entry points may run the vector TU: either it
/// was built without AVX2 codegen (NEON/autovec — always safe), or the CPU
/// we actually landed on supports AVX2. Checked once, outside the AVX2 TU.
bool simd_runtime_ok() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  static const bool ok =
      !simd_kernels_built_avx2() || __builtin_cpu_supports("avx2");
#else
  static const bool ok = true;
#endif
  return ok;
}

}  // namespace

namespace detail {

void minplus_scalar_block(dist_t* c, std::size_t ldc, const dist_t* a,
                          std::size_t lda, const dist_t* b, std::size_t ldb,
                          vidx_t r_lo, vidx_t r_hi, vidx_t nk, vidx_t c_lo,
                          vidx_t c_hi) {
  if (c_lo >= c_hi) return;
  for (vidx_t r = r_lo; r < r_hi; ++r) {
    dist_t* __restrict crow = c + static_cast<std::size_t>(r) * ldc;
    const dist_t* __restrict arow = a + static_cast<std::size_t>(r) * lda;
    for (vidx_t k = 0; k < nk; ++k) {
      const dist_t aval = arow[k];
      if (aval >= kInf) continue;
      const dist_t* __restrict brow = b + static_cast<std::size_t>(k) * ldb;
      for (vidx_t col = c_lo; col < c_hi; ++col) {
        crow[col] = std::min(crow[col], aval + brow[col]);
      }
    }
  }
}

}  // namespace detail

const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::kAuto:
      return "auto";
    case KernelVariant::kNaive:
      return "naive";
    case KernelVariant::kTiled:
      return "tiled";
    case KernelVariant::kTiledReg:
      return "tiled-reg";
    case KernelVariant::kSimd:
      return "simd";
    case KernelVariant::kTensor:
      return "tensor";
  }
  return "?";
}

int kernel_variant_index(KernelVariant v) {
  switch (v) {
    case KernelVariant::kAuto:
      return -1;
    case KernelVariant::kNaive:
      return 0;
    case KernelVariant::kTiled:
      return 1;
    case KernelVariant::kTiledReg:
      return 2;
    case KernelVariant::kSimd:
      return 3;
    case KernelVariant::kTensor:
      return 4;
  }
  return -1;
}

KernelVariant parse_kernel_variant(const std::string& name) {
  if (name == "auto") return KernelVariant::kAuto;
  if (name == "naive") return KernelVariant::kNaive;
  if (name == "tiled") return KernelVariant::kTiled;
  if (name == "tiled-reg") return KernelVariant::kTiledReg;
  if (name == "simd") return KernelVariant::kSimd;
  if (name == "tensor") return KernelVariant::kTensor;
  throw Error("unknown kernel variant: " + name +
              " (want auto | naive | tiled | tiled-reg | simd | tensor)");
}

void set_kernel_config(const KernelConfig& cfg) {
  g_variant.store(cfg.variant, std::memory_order_relaxed);
  g_threads.store(cfg.threads, std::memory_order_relaxed);
}

KernelConfig kernel_config() {
  KernelConfig cfg;
  cfg.variant = g_variant.load(std::memory_order_relaxed);
  cfg.threads = g_threads.load(std::memory_order_relaxed);
  return cfg;
}

KernelVariant resolved_kernel_variant() {
  const KernelVariant v = g_variant.load(std::memory_order_relaxed);
  if (v != KernelVariant::kAuto) return v;
  KernelVariant tuned = g_autotuned.load(std::memory_order_acquire);
  if (tuned == KernelVariant::kAuto) {
    std::lock_guard<std::mutex> lk(g_tune_mu);
    tuned = g_autotuned.load(std::memory_order_relaxed);
    if (tuned == KernelVariant::kAuto) {
      tuned = autotune_kernel_variant();
      g_autotuned.store(tuned, std::memory_order_release);
    }
  }
  return tuned;
}

KernelVariant autotune_kernel_variant() {
  // FW-shaped working set: 128³ is large enough to expose the cache/register
  // behaviour and small enough (~2 ms per candidate) to pay once per
  // process. All candidates produce identical distances, so a noisy winner
  // costs performance only, never correctness. Candidates run in enum order
  // and ties keep the earlier (simpler) kernel, so the ordering below is
  // also the tie-break policy (DESIGN.md §12).
  constexpr vidx_t n = 128;
  const std::size_t elems = static_cast<std::size_t>(n) * n;
  std::vector<dist_t> a(elems), b(elems), c0(elems), c(elems);
  Rng rng(0x9e3779b9u);
  for (auto& x : a) x = static_cast<dist_t>(rng.next_in(1, 1000));
  for (auto& x : b) x = static_cast<dist_t>(rng.next_in(1, 1000));
  for (auto& x : c0) x = static_cast<dist_t>(rng.next_in(500, 2000));

  const std::array<KernelVariant, kNumKernelVariants> candidates{
      KernelVariant::kNaive, KernelVariant::kTiled, KernelVariant::kTiledReg,
      KernelVariant::kSimd, KernelVariant::kTensor};
  const double ops = minplus_ops(n, n, n);
  KernelTuning tuning;
  KernelVariant best = KernelVariant::kTiledReg;
  double best_s = std::numeric_limits<double>::infinity();
  for (KernelVariant v : candidates) {
    double v_best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      c = c0;
      const auto t0 = std::chrono::steady_clock::now();
      minplus_accum_variant(v, c.data(), n, a.data(), n, b.data(), n, n, n,
                            n);
      const auto t1 = std::chrono::steady_clock::now();
      v_best = std::min(v_best, std::chrono::duration<double>(t1 - t0).count());
    }
    tuning.seconds_per_op[kernel_variant_index(v)] = v_best / ops;
    if (v_best < best_s) {
      best_s = v_best;
      best = v;
    }
  }
  tuning.measured = true;
  tuning.winner = best;
  {
    std::lock_guard<std::mutex> lk(g_table_mu);
    g_tuning = tuning;
  }
  // Also warm the kAuto cache so a kernel_tuning() call (e.g. from the cost
  // model) does not trigger a second measurement on the resolve path.
  g_autotuned.store(best, std::memory_order_release);
  return best;
}

KernelTuning kernel_tuning() {
  {
    std::lock_guard<std::mutex> lk(g_table_mu);
    if (g_tuning.measured) return g_tuning;
  }
  autotune_kernel_variant();
  std::lock_guard<std::mutex> lk(g_table_mu);
  return g_tuning;
}

double kernel_variant_rel_speed(KernelVariant v) {
  const KernelTuning tuning = kernel_tuning();
  if (v == KernelVariant::kAuto) v = tuning.winner;
  const int idx = kernel_variant_index(v);
  if (idx <= 0) return 1.0;  // kNaive is the reference (or unmapped)
  const double naive = tuning.seconds_per_op[0];
  const double mine = tuning.seconds_per_op[idx];
  if (!(naive > 0.0) || !(mine > 0.0)) return 1.0;
  return naive / mine;
}

void minplus_accum_naive(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc) {
  // r-k-c loop order: A[r][k] is hoisted, B row k and C row r stream
  // sequentially — cache-friendly and auto-vectorizable.
  for (vidx_t r = 0; r < nr; ++r) {
    dist_t* __restrict crow = c + static_cast<std::size_t>(r) * ldc;
    const dist_t* __restrict arow = a + static_cast<std::size_t>(r) * lda;
    for (vidx_t k = 0; k < nk; ++k) {
      const dist_t aval = arow[k];
      if (aval >= kInf) continue;
      const dist_t* __restrict brow = b + static_cast<std::size_t>(k) * ldb;
      for (vidx_t col = 0; col < nc; ++col) {
        // brow[col] may be kInf: aval + kInf stays >= kInf and the min is a
        // no-op because crow is never above kInf. Guarded by the sentinel
        // headroom of kInf (max/4), so no overflow check is needed here.
        const dist_t cand = aval + brow[col];
        crow[col] = std::min(crow[col], cand);
      }
    }
  }
}

void minplus_accum_tiled(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc) {
  for (vidx_t k0 = 0; k0 < nk; k0 += kKTile) {
    const vidx_t k1 = std::min<vidx_t>(nk, k0 + kKTile);
    for (vidx_t r = 0; r < nr; ++r) {
      const dist_t* __restrict arow = a + static_cast<std::size_t>(r) * lda;
      // kInf-row skip hoisted to tile granularity: one scan decides the
      // whole (row, k-tile) strip — unreachable row segments cost O(tile)
      // instead of O(tile · nc) branch tests.
      bool live = false;
      for (vidx_t k = k0; k < k1 && !live; ++k) live = arow[k] < kInf;
      if (!live) continue;
      dist_t* __restrict crow = c + static_cast<std::size_t>(r) * ldc;
      for (vidx_t k = k0; k < k1; ++k) {
        const dist_t aval = arow[k];
        if (aval >= kInf) continue;
        const dist_t* __restrict brow = b + static_cast<std::size_t>(k) * ldb;
        for (vidx_t col = 0; col < nc; ++col) {
          crow[col] = std::min(crow[col], aval + brow[col]);
        }
      }
    }
  }
}

void minplus_accum_tiled_reg(dist_t* c, std::size_t ldc, const dist_t* a,
                             std::size_t lda, const dist_t* b,
                             std::size_t ldb, vidx_t nr, vidx_t nk,
                             vidx_t nc) {
  const vidx_t c_main = nc - nc % kRegCols;
  for (vidx_t r0 = 0; r0 < nr; r0 += kRowTile) {
    const vidx_t r1 = std::min<vidx_t>(nr, r0 + kRowTile);
    const vidx_t r_main = r0 + (r1 - r0) - (r1 - r0) % kRegRows;
    for (vidx_t cc = 0; cc < c_main; cc += kRegCols) {
      for (vidx_t r = r0; r < r_main; r += kRegRows) {
        // The accumulator patch lives in locals across the whole k loop;
        // the branchless inner loop auto-vectorizes over kRegCols.
        dist_t acc[kRegRows][kRegCols];
        for (int i = 0; i < kRegRows; ++i) {
          const dist_t* crow =
              c + static_cast<std::size_t>(r + i) * ldc + cc;
          for (int j = 0; j < kRegCols; ++j) acc[i][j] = crow[j];
        }
        for (vidx_t k = 0; k < nk; ++k) {
          const dist_t* __restrict brow =
              b + static_cast<std::size_t>(k) * ldb + cc;
          for (int i = 0; i < kRegRows; ++i) {
            const dist_t aval =
                a[static_cast<std::size_t>(r + i) * lda + k];
            if (aval >= kInf) continue;
            for (int j = 0; j < kRegCols; ++j) {
              acc[i][j] = std::min(acc[i][j], aval + brow[j]);
            }
          }
        }
        for (int i = 0; i < kRegRows; ++i) {
          dist_t* crow = c + static_cast<std::size_t>(r + i) * ldc + cc;
          for (int j = 0; j < kRegCols; ++j) crow[j] = acc[i][j];
        }
      }
      // Rows of this tile that do not fill a register block.
      detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, r_main, r1, nk,
                                   cc, cc + kRegCols);
    }
    // Columns that do not fill a register block.
    detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, r0, r1, nk, c_main,
                                 nc);
  }
}

void minplus_accum_simd(dist_t* c, std::size_t ldc, const dist_t* a,
                        std::size_t lda, const dist_t* b, std::size_t ldb,
                        vidx_t nr, vidx_t nk, vidx_t nc) {
  // Bit-identical fallback when the binary's vector TU outruns this CPU:
  // every variant computes the same entrywise min, so swapping kernels here
  // changes host wall-clock only.
  if (!simd_runtime_ok()) {
    minplus_accum_tiled(c, ldc, a, lda, b, ldb, nr, nk, nc);
    return;
  }
  detail::minplus_accum_simd_impl(c, ldc, a, lda, b, ldb, nr, nk, nc);
}

void minplus_accum_tensor(dist_t* c, std::size_t ldc, const dist_t* a,
                          std::size_t lda, const dist_t* b, std::size_t ldb,
                          vidx_t nr, vidx_t nk, vidx_t nc) {
  if (!simd_runtime_ok()) {
    minplus_accum_tiled(c, ldc, a, lda, b, ldb, nr, nk, nc);
    return;
  }
  detail::minplus_accum_tensor_impl(c, ldc, a, lda, b, ldb, nr, nk, nc);
}

void minplus_accum_variant(KernelVariant v, dist_t* c, std::size_t ldc,
                           const dist_t* a, std::size_t lda, const dist_t* b,
                           std::size_t ldb, vidx_t nr, vidx_t nk, vidx_t nc) {
  if (nr <= 0 || nk <= 0 || nc <= 0) return;
  if (v == KernelVariant::kAuto) v = resolved_kernel_variant();
  switch (v) {
    case KernelVariant::kNaive:
      minplus_accum_naive(c, ldc, a, lda, b, ldb, nr, nk, nc);
      return;
    case KernelVariant::kTiled:
      minplus_accum_tiled(c, ldc, a, lda, b, ldb, nr, nk, nc);
      return;
    case KernelVariant::kSimd:
      minplus_accum_simd(c, ldc, a, lda, b, ldb, nr, nk, nc);
      return;
    case KernelVariant::kTensor:
      minplus_accum_tensor(c, ldc, a, lda, b, ldb, nr, nk, nc);
      return;
    case KernelVariant::kAuto:
    case KernelVariant::kTiledReg:
      minplus_accum_tiled_reg(c, ldc, a, lda, b, ldb, nr, nk, nc);
      return;
  }
}

}  // namespace gapsp::core
