// Vectorized min-plus microkernels (DESIGN.md §12): the `simd` register-tile
// kernel and the `tensor` fused-tile-layout kernel, both written against the
// portable lane API in simd_lane.h. src/core/CMakeLists.txt compiles this
// translation unit with -mavx2 when the compiler supports it, so the lane
// backend here may be AVX2 even though the rest of the library is baseline;
// kernel_engine.cpp gates every call behind a runtime CPU check and falls
// back to the scalar tiled kernel (bit-identical by contract) on hosts the
// build outruns. Keep this TU free of global initializers — nothing in it
// may execute before the gate.
//
// Both kernels require operands in [0, kInf] (every distance matrix in this
// system satisfies that: weights are non-negative and sat_add clamps at
// kInf). Under that precondition kInf needs no per-lane branch: a candidate
// through an unreachable entry sums to >= kInf without wrapping (kInf is
// INT32_MAX/4, so a+b <= 2·kInf fits comfortably), and the lane-wise min
// against an accumulator that never exceeds kInf discards it — exactly what
// the scalar kernels' `aval >= kInf` skip does, computed branch-free.
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/kernel_engine.h"
#include "core/simd_lane.h"

namespace gapsp::core {
namespace {

/// k-strip granularity of the hoisted liveness skip — matches the scalar
/// tiled kernel so all-kInf strips cost one scan here too.
constexpr vidx_t kSimdKTile = 64;
/// Register tile: 8 output rows × 16 output columns held in lane vectors
/// across the whole k loop (C read and written once per tile).
constexpr int kSimdRows = 8;
constexpr int kSimdCols = 16;
constexpr int kColVecs = kSimdCols / lanes::kWidth;
static_assert(kSimdCols % lanes::kWidth == 0,
              "register tile must be a whole number of lanes");

/// True when any entry of the rows×(k1-k0) strip of A is reachable; an
/// all-kInf strip contributes no candidate below kInf, so the caller skips
/// the whole (row-block, k-tile) at O(strip) cost instead of O(strip · nc).
bool strip_live(const dist_t* a, std::size_t lda, vidx_t r0, int rows,
                vidx_t k0, vidx_t k1) {
  for (int i = 0; i < rows; ++i) {
    const dist_t* arow = a + static_cast<std::size_t>(r0 + i) * lda;
    for (vidx_t k = k0; k < k1; ++k) {
      if (arow[k] < kInf) return true;
    }
  }
  return false;
}

}  // namespace

bool simd_kernels_built_avx2() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

const char* simd_lane_isa() { return lanes::kIsa; }
int simd_lane_width() { return lanes::kWidth; }

namespace detail {

void minplus_accum_simd_impl(dist_t* c, std::size_t ldc, const dist_t* a,
                             std::size_t lda, const dist_t* b,
                             std::size_t ldb, vidx_t nr, vidx_t nk,
                             vidx_t nc) {
  using lanes::VI32;
  const vidx_t c_main = nc - nc % kSimdCols;
  const vidx_t r_main = nr - nr % kSimdRows;
  const vidx_t num_ktiles = (nk + kSimdKTile - 1) / kSimdKTile;

  // Per (row-block, k-tile) liveness, scanned once per row block and reused
  // by every column tile of that row block.
  thread_local std::vector<unsigned char> live;
  live.assign(static_cast<std::size_t>(num_ktiles), 0);

  for (vidx_t r = 0; r < r_main; r += kSimdRows) {
    bool any_live = false;
    for (vidx_t t = 0; t < num_ktiles; ++t) {
      const vidx_t k0 = t * kSimdKTile;
      const vidx_t k1 = std::min<vidx_t>(nk, k0 + kSimdKTile);
      live[static_cast<std::size_t>(t)] =
          strip_live(a, lda, r, kSimdRows, k0, k1) ? 1 : 0;
      any_live |= live[static_cast<std::size_t>(t)] != 0;
    }
    if (any_live) {
      for (vidx_t cc = 0; cc < c_main; cc += kSimdCols) {
        VI32 acc[kSimdRows][kColVecs];
        for (int i = 0; i < kSimdRows; ++i) {
          dist_t* crow = c + static_cast<std::size_t>(r + i) * ldc + cc;
          for (int j = 0; j < kColVecs; ++j) {
            acc[i][j] = lanes::load(crow + j * lanes::kWidth);
          }
        }
        for (vidx_t t = 0; t < num_ktiles; ++t) {
          if (live[static_cast<std::size_t>(t)] == 0) continue;
          const vidx_t k0 = t * kSimdKTile;
          const vidx_t k1 = std::min<vidx_t>(nk, k0 + kSimdKTile);
          for (vidx_t k = k0; k < k1; ++k) {
            const dist_t* brow =
                b + static_cast<std::size_t>(k) * ldb + cc;
            for (int j = 0; j < kColVecs; ++j) {
              const VI32 bv = lanes::load(brow + j * lanes::kWidth);
              for (int i = 0; i < kSimdRows; ++i) {
                const VI32 av = lanes::splat(
                    a[static_cast<std::size_t>(r + i) * lda + k]);
                acc[i][j] = lanes::vmin(acc[i][j], lanes::add(av, bv));
              }
            }
          }
        }
        for (int i = 0; i < kSimdRows; ++i) {
          dist_t* crow = c + static_cast<std::size_t>(r + i) * ldc + cc;
          for (int j = 0; j < kColVecs; ++j) {
            lanes::store(crow + j * lanes::kWidth, acc[i][j]);
          }
        }
      }
    }
    // Columns that do not fill a register tile (the scalar path re-derives
    // its own per-k skip, so a dead row block costs only the scan above).
    detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, r, r + kSimdRows,
                                 nk, c_main, nc);
  }
  // Rows that do not fill a register tile.
  detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, r_main, nr, nk, 0,
                               nc);
}

void minplus_accum_tensor_impl(dist_t* c, std::size_t ldc, const dist_t* a,
                               std::size_t lda, const dist_t* b,
                               std::size_t ldb, vidx_t nr, vidx_t nk,
                               vidx_t nc) {
  using lanes::VI32;
  const vidx_t c_main = nc - nc % kSimdCols;
  const vidx_t r_main = nr - nr % kSimdRows;
  const vidx_t num_ctiles = c_main / kSimdCols;

  // Fused-tile B layout: per k-panel, the panel is repacked into contiguous
  // lane-major tiles — tile t holds its 16 columns for every local k back to
  // back (one cache line per k at dist_t=4B), so the inner loop streams the
  // pack buffer sequentially instead of striding ldb between k's. This is
  // the 3D-tensor recasting of the panel update: a batch of (k × 16) tiles
  // swept by the same register-tile min-plus. The pack cost (read the panel
  // once) amortizes over all nr rows.
  thread_local std::vector<dist_t> pack;

  for (vidx_t k0 = 0; k0 < nk; k0 += kSimdKTile) {
    const vidx_t k1 = std::min<vidx_t>(nk, k0 + kSimdKTile);
    const vidx_t kt = k1 - k0;
    if (num_ctiles > 0) {
      pack.resize(static_cast<std::size_t>(num_ctiles) * kt * kSimdCols);
      for (vidx_t k = 0; k < kt; ++k) {
        const dist_t* brow = b + static_cast<std::size_t>(k0 + k) * ldb;
        for (vidx_t t = 0; t < num_ctiles; ++t) {
          std::memcpy(pack.data() +
                          (static_cast<std::size_t>(t) * kt + k) * kSimdCols,
                      brow + static_cast<std::size_t>(t) * kSimdCols,
                      sizeof(dist_t) * kSimdCols);
        }
      }
    }
    for (vidx_t r = 0; r < r_main; r += kSimdRows) {
      if (!strip_live(a, lda, r, kSimdRows, k0, k1)) continue;
      for (vidx_t t = 0; t < num_ctiles; ++t) {
        const dist_t* ptile =
            pack.data() + static_cast<std::size_t>(t) * kt * kSimdCols;
        dist_t* ctile =
            c + static_cast<std::size_t>(r) * ldc + t * kSimdCols;
        VI32 acc[kSimdRows][kColVecs];
        for (int i = 0; i < kSimdRows; ++i) {
          for (int j = 0; j < kColVecs; ++j) {
            acc[i][j] = lanes::load(ctile + static_cast<std::size_t>(i) * ldc +
                                    j * lanes::kWidth);
          }
        }
        for (vidx_t k = 0; k < kt; ++k) {
          const dist_t* brow = ptile + static_cast<std::size_t>(k) * kSimdCols;
          for (int j = 0; j < kColVecs; ++j) {
            const VI32 bv = lanes::load(brow + j * lanes::kWidth);
            for (int i = 0; i < kSimdRows; ++i) {
              const VI32 av = lanes::splat(
                  a[static_cast<std::size_t>(r + i) * lda + k0 + k]);
              acc[i][j] = lanes::vmin(acc[i][j], lanes::add(av, bv));
            }
          }
        }
        for (int i = 0; i < kSimdRows; ++i) {
          for (int j = 0; j < kColVecs; ++j) {
            lanes::store(ctile + static_cast<std::size_t>(i) * ldc +
                             j * lanes::kWidth,
                         acc[i][j]);
          }
        }
      }
    }
  }
  // Ragged tails, full k depth in one pass: columns past the last whole tile
  // for the blocked rows, then the leftover rows across the full width.
  detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, 0, r_main, nk, c_main,
                               nc);
  detail::minplus_scalar_block(c, ldc, a, lda, b, ldb, r_main, nr, nk, 0,
                               nc);
}

}  // namespace detail

}  // namespace gapsp::core
