// Device-simulator launch wrappers around the dense kernels: the tiled
// min-plus product and the in-core blocked Floyd–Warshall used for diagonal
// blocks (Sec. III-A) and for the component/boundary solves of the boundary
// algorithm (Sec. III-C). Each wrapper performs the real computation and
// charges a kernel profile mirroring the CUDA implementation it stands for
// (shared-memory tiling, one thread block per output tile).
#pragma once

#include "core/minplus.h"
#include "sim/device.h"

namespace gapsp::core {

/// Default shared-memory tile side used by the simulated kernels (the paper
/// follows the classic 32×32 / 64×64 tiling of [14],[20]).
inline constexpr int kDeviceTile = 64;

/// C = min(C, A ⊗ B) as one tiled kernel launch on `stream`. Pointers are
/// into device buffers. Executes its tile grid through Device::launch_grid
/// (aliasing-aware decomposition, so C==A / C==B panel forms stay race-free);
/// results and the simulated duration are independent of the host thread
/// count. Returns the simulated kernel duration.
double dev_minplus(sim::Device& dev, sim::StreamId stream, dist_t* c,
                   std::size_t ldc, const dist_t* a, std::size_t lda,
                   const dist_t* b, std::size_t ldb, vidx_t nr, vidx_t nk,
                   vidx_t nc, int tile = kDeviceTile);

/// In-core blocked Floyd–Warshall over an n×n on-device matrix: per round,
/// a single-block diagonal kernel, one grid launch for the 2(nt-1) row and
/// column panels, and one grid launch for the (nt-1)² remaining-tile min-plus
/// updates. Independent blocks run over the host thread pool; results and
/// the simulated timeline are bit-identical to serial execution. Returns
/// total simulated duration.
double dev_blocked_fw(sim::Device& dev, sim::StreamId stream, dist_t* m,
                      std::size_t ld, vidx_t n, int tile = kDeviceTile);

}  // namespace gapsp::core
