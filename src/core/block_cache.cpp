#include "core/block_cache.h"

#include <string>

namespace gapsp::core {

BlockCache::BlockCache(std::size_t capacity_bytes, int shards)
    : capacity_bytes_(capacity_bytes) {
  GAPSP_CHECK(shards > 0, "cache needs at least one shard");
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shards));
  // Spread the budget's division remainder over the leading shards instead
  // of truncating it away: with the single floored quotient, S−1 shards'
  // worth of bytes could go unused and any capacity below the shard count
  // degenerated to all-zero budgets that evicted every tile as oversize.
  const std::size_t base = capacity_bytes_ / shards_.size();
  const std::size_t rem = capacity_bytes_ % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < rem ? 1 : 0);
  }
}

BlockCache::Shard& BlockCache::shard_of(std::uint64_t key) {
  // Fibonacci mixing so block-diagonal access patterns spread over shards.
  const std::uint64_t h = (key * 0x9e3779b97f4a7c15ULL) >> 32;
  return shards_[static_cast<std::size_t>(h) % shards_.size()];
}

const BlockCache::Shard& BlockCache::shard_of(std::uint64_t key) const {
  const std::uint64_t h = (key * 0x9e3779b97f4a7c15ULL) >> 32;
  return shards_[static_cast<std::size_t>(h) % shards_.size()];
}

BlockData BlockCache::insert_locked(Shard& s, std::uint64_t key,
                                    BlockData data, std::size_t size) {
  s.lru.push_front(Entry{key, data, size});
  s.index.emplace(key, s.lru.begin());
  s.bytes += size;
  while (s.bytes > s.capacity && s.lru.size() > 1) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
  return data;
}

BlockData BlockCache::get_or_load(vidx_t row_block, vidx_t col_block,
                                  const Loader& loader) {
  const std::uint64_t key = key_of(row_block, col_block);
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->data;
    }
    ++s.misses;
    if (s.quarantined.count(key) != 0) {
      ++s.quarantine_hits;
      throw TileError(TileFailure::kQuarantined, row_block, col_block,
                      "tile (" + std::to_string(row_block) + "," +
                          std::to_string(col_block) + ") is quarantined");
    }
  }

  BlockData data;
  try {
    data = loader();
  } catch (...) {
    std::lock_guard<std::mutex> lk(s.mu);
    // A racing thread may have published a valid copy while our load was
    // failing — serve it rather than poisoning the caller (and never
    // quarantine a key the cache can demonstrably serve).
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->data;
    }
    try {
      throw;
    } catch (const TileError& e) {
      // Persistent damage (corrupt payload, retries exhausted): remember it
      // so later misses skip the doomed read. Shed/quarantined kinds carry
      // no new evidence about the bytes on disk and leave the mark alone.
      if (e.kind() == TileFailure::kCorrupt ||
          e.kind() == TileFailure::kTransient) {
        s.quarantined.insert(key);
      }
      throw;
    }
  }
  GAPSP_CHECK(data != nullptr, "cache loader returned no block");
  const bool negative = negative_ != nullptr && data == negative_;
  const std::size_t size = negative ? 0 : data->size() * sizeof(dist_t);

  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // A racing thread loaded and published the same key first; serve its
    // copy so every reader of one block shares one allocation.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->data;
  }
  if (negative) ++s.negative_loads;
  // A successful load is fresh evidence the tile is readable again.
  s.quarantined.erase(key);
  return insert_locked(s, key, std::move(data), size);
}

void BlockCache::publish(vidx_t row_block, vidx_t col_block, BlockData data) {
  GAPSP_CHECK(data != nullptr, "cannot publish a null block");
  const std::uint64_t key = key_of(row_block, col_block);
  Shard& s = shard_of(key);
  const bool negative = negative_ != nullptr && data == negative_;
  const std::size_t size = negative ? 0 : data->size() * sizeof(dist_t);

  std::lock_guard<std::mutex> lk(s.mu);
  s.quarantined.erase(key);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  insert_locked(s, key, std::move(data), size);
}

bool BlockCache::is_quarantined(vidx_t row_block, vidx_t col_block) const {
  const std::uint64_t key = key_of(row_block, col_block);
  const Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lk(s.mu);
  return s.quarantined.count(key) != 0;
}

long long BlockCache::clear_quarantine() {
  long long cleared = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    cleared += static_cast<long long>(s.quarantined.size());
    s.quarantined.clear();
  }
  return cleared;
}

CacheStats BlockCache::stats() const {
  CacheStats out;
  out.capacity_bytes = capacity_bytes_;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.negative_loads += s.negative_loads;
    out.quarantined_tiles += static_cast<long long>(s.quarantined.size());
    out.quarantine_hits += s.quarantine_hits;
    out.bytes_cached += s.bytes;
  }
  return out;
}

void BlockCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

}  // namespace gapsp::core
