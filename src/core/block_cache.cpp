#include "core/block_cache.h"

namespace gapsp::core {

BlockCache::BlockCache(std::size_t capacity_bytes, int shards)
    : capacity_bytes_(capacity_bytes) {
  GAPSP_CHECK(shards > 0, "cache needs at least one shard");
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shards));
  shard_capacity_ = capacity_bytes_ / shards_.size();
}

BlockCache::Shard& BlockCache::shard_of(std::uint64_t key) {
  // Fibonacci mixing so block-diagonal access patterns spread over shards.
  const std::uint64_t h = (key * 0x9e3779b97f4a7c15ULL) >> 32;
  return shards_[static_cast<std::size_t>(h) % shards_.size()];
}

BlockData BlockCache::get_or_load(vidx_t row_block, vidx_t col_block,
                                  const Loader& loader) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row_block))
       << 32) |
      static_cast<std::uint32_t>(col_block);
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->data;
    }
    ++s.misses;
  }

  BlockData data = loader();
  GAPSP_CHECK(data != nullptr, "cache loader returned no block");
  const bool negative = negative_ != nullptr && data == negative_;
  const std::size_t size = negative ? 0 : data->size() * sizeof(dist_t);

  std::lock_guard<std::mutex> lk(s.mu);
  if (negative) ++s.negative_loads;
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // A racing thread loaded and published the same key first; serve its
    // copy so every reader of one block shares one allocation.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->data;
  }
  s.lru.push_front(Entry{key, data, size});
  s.index.emplace(key, s.lru.begin());
  s.bytes += size;
  while (s.bytes > shard_capacity_ && s.lru.size() > 1) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
  return data;
}

CacheStats BlockCache::stats() const {
  CacheStats out;
  out.capacity_bytes = capacity_bytes_;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.negative_loads += s.negative_loads;
    out.bytes_cached += s.bytes;
  }
  return out;
}

void BlockCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

}  // namespace gapsp::core
