// Helpers shared by the three out-of-core implementations.
#pragma once

#include <memory>

#include "core/apsp_options.h"
#include "core/dist_store.h"
#include "graph/csr_graph.h"
#include "sim/device.h"

namespace gapsp::core {

/// Wires a Device to the fault schedule requested in ApspOptions for the
/// lifetime of one algorithm run. Prefers the pre-built injector in
/// opts.fault_injector (shared across degrade attempts so scripted faults
/// stay consumed); otherwise materializes one from opts.faults, seeded for
/// `device_index`. Always applies opts.retry. Detaches on destruction.
class FaultScope {
 public:
  FaultScope(sim::Device& dev, const ApspOptions& opts, int device_index = 0)
      : dev_(dev) {
    if (opts.fault_injector != nullptr) {
      injector_ = opts.fault_injector;
    } else if (opts.faults != nullptr) {
      owned_ = std::make_unique<sim::FaultInjector>(*opts.faults,
                                                    device_index);
      injector_ = owned_.get();
    }
    dev_.set_fault_injector(injector_);
    dev_.set_retry_policy(opts.retry);
  }
  ~FaultScope() { dev_.set_fault_injector(nullptr); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  sim::FaultInjector* injector() const { return injector_; }

 private:
  sim::Device& dev_;
  std::unique_ptr<sim::FaultInjector> owned_;
  sim::FaultInjector* injector_ = nullptr;
};

/// Initializes `store` with the weight matrix of `g`: 0 on the diagonal,
/// edge weights where arcs exist, kInf elsewhere (the Floyd–Warshall
/// starting state).
void init_weight_matrix(const graph::CsrGraph& g, DistStore& store);

/// Fills a host row-major buffer with the weight-matrix block whose top-left
/// corner is (row0, col0).
void weight_block(const graph::CsrGraph& g, vidx_t row0, vidx_t col0,
                  vidx_t rows, vidx_t cols, dist_t* dst, std::size_t ld);

/// Applies the kernel-engine options to the process-wide engine config and
/// to `dev` (grid-execution thread count), and records the resolved variant
/// name in the device metrics. Call once per Device, right after creation.
void configure_kernels(sim::Device& dev, const ApspOptions& opts);

/// Copies the device metrics counters into an ApspMetrics (the algorithm-
/// specific fields are left for the caller).
ApspMetrics metrics_from_device(const sim::Device& dev, double wall_seconds);

/// Uploaded CSR representation of the graph plus the h2d cost of shipping
/// it (the `S` term of the Johnson batch formula lives in `bytes()`).
struct DeviceGraph {
  sim::DeviceBuffer<eidx_t> offsets;
  sim::DeviceBuffer<vidx_t> targets;
  sim::DeviceBuffer<dist_t> weights;

  std::size_t bytes() const {
    return offsets.bytes() + targets.bytes() + weights.bytes();
  }
};

/// Allocates and uploads the CSR arrays (three charged h2d transfers).
DeviceGraph upload_graph(sim::Device& dev, sim::StreamId stream,
                         const graph::CsrGraph& g);

}  // namespace gapsp::core
