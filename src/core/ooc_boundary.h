// Out-of-core boundary algorithm (Algorithm 3 of the paper, after Djidjev
// et al.), with the paper's two optimizations:
//
//  * transfer batching — finished block-rows of the output are accumulated
//    in a device staging buffer of size S_rem = L - S_dia - S_bound and
//    shipped to the host in few large transfers instead of k² small ones;
//  * compute/transfer overlap — two staging buffers and two streams, so the
//    min-plus kernels of the next block-rows run while the previous batch is
//    in flight to pinned host memory.
//
// Steps: (1) k-way partition (our multilevel partitioner standing in for
// METIS) and boundary-first renumbering; (2) per-component blocked FW on the
// device (dist2); (3) boundary-graph FW over virtual + cross edges (dist3);
// (4) A(i,j) = min(direct, C2B[i] ⊗ bound(i,j) ⊗ B2C[j]) streamed to the
// host store in the permuted order.
#pragma once

#include "core/apsp_common.h"
#include "partition/boundary.h"

namespace gapsp::core {

/// Placement decisions and memory accounting for one run. Exposed for the
/// Sec. IV cost models and the benches.
struct BoundaryPlan {
  part::BoundaryLayout layout;
  int k = 0;                ///< components actually used (may be < requested)
  vidx_t max_comp = 0;      ///< N_max
  vidx_t nb = 0;            ///< total boundary vertices NB
  std::size_t s_dia = 0;    ///< diagonal-block working set, bytes
  std::size_t s_bound = 0;  ///< boundary matrix, bytes
  std::size_t s_rem = 0;    ///< staging budget, bytes
  vidx_t staging_rows = 0;  ///< output rows per staging buffer
  /// Step 2 double-buffers the component block. False when overlap is off
  /// or when memory is too tight for the second block at this k (the plan
  /// then degrades to a single buffer rather than halving k further).
  bool pipeline_comp = false;
};

/// Partitions and sizes the run. Starts from opts.num_components (0 → the
/// paper's √n/4 default) and halves k until the working set fits the
/// device; throws gapsp::Error if no k >= 2 fits.
BoundaryPlan plan_boundary(const graph::CsrGraph& g, const ApspOptions& opts);

/// Runs Algorithm 3 with a precomputed plan.
ApspResult ooc_boundary(const graph::CsrGraph& g, const ApspOptions& opts,
                        const BoundaryPlan& plan, DistStore& store);

/// Plans and runs.
ApspResult ooc_boundary(const graph::CsrGraph& g, const ApspOptions& opts,
                        DistStore& store);

}  // namespace gapsp::core
