#include "core/compressed_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"  // fnv1a
#include "util/timer.h"

namespace gapsp::core {

// ---- GAPSPZ1 store ----
// (The z1 codec itself lives in core/z1_codec.cpp; this TU only frames
// tiles into the GAPSPZ1 container.)

namespace {

constexpr char kZMagic[8] = {'G', 'A', 'P', 'S', 'P', 'Z', '1', '\0'};

struct ZHeader {
  char magic[8];
  std::int64_t n;
  std::int64_t tile;
  std::int64_t tiles_per_side;
  std::uint64_t payload_bytes;  ///< sum of directory entry sizes
  std::uint64_t dir_checksum;   ///< fnv1a over the directory array
  std::uint64_t reserved[2];
};
static_assert(sizeof(ZHeader) == 64, "GAPSPZ1 header layout drifted");

struct ZDirEntry {
  std::uint64_t offset = 0;  ///< absolute file offset of the tile's frame
  std::uint64_t bytes = 0;   ///< 0 = all-kInf tile, nothing stored
};
static_assert(sizeof(ZDirEntry) == 16, "GAPSPZ1 directory layout drifted");

/// RAII stdio handle (mirrors checkpoint.cpp) so error paths cannot leak.
struct File {
  std::FILE* f = nullptr;
  explicit File(std::FILE* f) : f(f) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  std::FILE* release() {
    std::FILE* out = f;
    f = nullptr;
    return out;
  }
};

bool all_inf(const dist_t* p, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (p[i] != kInf) return false;
  }
  return true;
}

void seek_to(std::FILE* f, std::uint64_t off, const std::string& path) {
  if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0) {
    throw IoError("seek failed in " + path);
  }
}

/// Header + validated directory, shared by the reader and the info probe.
struct ZIndex {
  ZHeader h{};
  std::vector<ZDirEntry> dir;
  std::uint64_t file_bytes = 0;
};

ZIndex read_index(std::FILE* f, const std::string& path) {
  ZIndex ix;
  if (std::fread(&ix.h, sizeof(ix.h), 1, f) != 1) {
    throw IoError(path + ": short read of GAPSPZ1 header");
  }
  if (std::memcmp(ix.h.magic, kZMagic, sizeof(kZMagic)) != 0) {
    throw IoError(path + ": not a GAPSPZ1 store");
  }
  const std::int64_t n = ix.h.n;
  const std::int64_t tile = ix.h.tile;
  const std::int64_t tps = ix.h.tiles_per_side;
  if (n <= 0 || tile <= 0 || tile > n || tps != (n + tile - 1) / tile) {
    throw CorruptError(path + ": corrupt GAPSPZ1 geometry");
  }
  const auto num_tiles =
      static_cast<std::uint64_t>(tps) * static_cast<std::uint64_t>(tps);
  ix.dir.resize(static_cast<std::size_t>(num_tiles));
  if (std::fread(ix.dir.data(), sizeof(ZDirEntry), ix.dir.size(), f) !=
      ix.dir.size()) {
    throw IoError(path + ": short read of GAPSPZ1 directory");
  }
  if (fnv1a(ix.dir.data(), ix.dir.size() * sizeof(ZDirEntry)) !=
      ix.h.dir_checksum) {
    throw CorruptError(path + ": GAPSPZ1 directory checksum mismatch");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    throw IoError("seek failed in " + path);
  }
  const long fend = std::ftell(f);
  if (fend < 0) throw IoError("tell failed in " + path);
  ix.file_bytes = static_cast<std::uint64_t>(fend);
  const std::uint64_t data_start =
      sizeof(ZHeader) + num_tiles * sizeof(ZDirEntry);
  std::uint64_t payload = 0;
  for (const ZDirEntry& e : ix.dir) {
    if (e.bytes == 0) continue;
    if (e.offset < data_start || e.offset + e.bytes < e.offset ||
        e.offset + e.bytes > ix.file_bytes) {
      throw CorruptError(path + ": GAPSPZ1 directory entry out of bounds");
    }
    payload += e.bytes;
  }
  if (payload != ix.h.payload_bytes) {
    throw CorruptError(path + ": GAPSPZ1 payload size mismatch");
  }
  return ix;
}

class CompressedStore final : public DistStore {
 public:
  CompressedStore(ZIndex ix, std::FILE* f, std::string path)
      : DistStore(static_cast<vidx_t>(ix.h.n)),
        ix_(std::move(ix)),
        file_(f),
        path_(std::move(path)),
        tile_(static_cast<vidx_t>(ix_.h.tile)),
        tps_(static_cast<vidx_t>(ix_.h.tiles_per_side)) {}

  ~CompressedStore() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void write_block(vidx_t, vidx_t, vidx_t, vidx_t, const dist_t*,
                   std::size_t) override {
    throw IoError("compressed store " + path_ + " is read-only");
  }

  void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                  dist_t* dst, std::size_t dst_ld) const override {
    check_block(row0, col0, rows, cols);
    if (rows == 0 || cols == 0) return;
    for (vidx_t bi = row0 / tile_; bi * tile_ < row0 + rows; ++bi) {
      for (vidx_t bj = col0 / tile_; bj * tile_ < col0 + cols; ++bj) {
        // Intersection of the request with tile (bi, bj).
        const vidx_t r0 = std::max(row0, bi * tile_);
        const vidx_t r1 = std::min<vidx_t>(row0 + rows, (bi + 1) * tile_);
        const vidx_t c0 = std::max(col0, bj * tile_);
        const vidx_t c1 = std::min<vidx_t>(col0 + cols, (bj + 1) * tile_);
        const vidx_t tile_cols = std::min<vidx_t>(tile_, n() - bj * tile_);
        const std::size_t t = tile_index(bi, bj);
        if (ix_.dir[t].bytes == 0) {
          for (vidx_t r = r0; r < r1; ++r) {
            std::fill_n(dst + static_cast<std::size_t>(r - row0) * dst_ld +
                            static_cast<std::size_t>(c0 - col0),
                        static_cast<std::size_t>(c1 - c0), kInf);
          }
          continue;
        }
        const std::vector<dist_t>& buf = load_tile(bi, bj);
        for (vidx_t r = r0; r < r1; ++r) {
          std::copy_n(buf.data() +
                          static_cast<std::size_t>(r - bi * tile_) *
                              static_cast<std::size_t>(tile_cols) +
                          static_cast<std::size_t>(c0 - bj * tile_),
                      static_cast<std::size_t>(c1 - c0),
                      dst + static_cast<std::size_t>(r - row0) * dst_ld +
                          static_cast<std::size_t>(c0 - col0));
        }
      }
    }
  }

  vidx_t tile_size() const override { return tile_; }

  bool block_known_inf(vidx_t row0, vidx_t col0, vidx_t rows,
                       vidx_t cols) const override {
    check_block(row0, col0, rows, cols);
    if (rows == 0 || cols == 0) return true;
    for (vidx_t bi = row0 / tile_; bi * tile_ < row0 + rows; ++bi) {
      for (vidx_t bj = col0 / tile_; bj * tile_ < col0 + cols; ++bj) {
        if (ix_.dir[tile_index(bi, bj)].bytes != 0) return false;
      }
    }
    return true;
  }

 private:
  std::size_t tile_index(vidx_t bi, vidx_t bj) const {
    return static_cast<std::size_t>(bi) * static_cast<std::size_t>(tps_) +
           static_cast<std::size_t>(bj);
  }

  /// Decompresses tile (bi, bj) into the single-tile memo. Repeated reads
  /// from one tile (a row sweep, an at() loop) decode it once; callers
  /// wanting real caching put a BlockCache in front (QueryEngine does).
  const std::vector<dist_t>& load_tile(vidx_t bi, vidx_t bj) const {
    const std::size_t t = tile_index(bi, bj);
    if (memo_tile_ == static_cast<std::int64_t>(t)) return memo_;
    const ZDirEntry& e = ix_.dir[t];
    comp_.resize(static_cast<std::size_t>(e.bytes));
    seek_to(file_, e.offset, path_);
    if (std::fread(comp_.data(), 1, comp_.size(), file_) != comp_.size()) {
      throw IoError("short read from " + path_);
    }
    const vidx_t trows = std::min<vidx_t>(tile_, n() - bi * tile_);
    const vidx_t tcols = std::min<vidx_t>(tile_, n() - bj * tile_);
    const std::size_t elems =
        static_cast<std::size_t>(trows) * static_cast<std::size_t>(tcols);
    if (z1_raw_size(comp_.data(), comp_.size()) != elems * sizeof(dist_t)) {
      throw CorruptError(path_ + ": tile frame size does not match geometry");
    }
    memo_.resize(elems);
    memo_tile_ = -1;  // invalid while the buffer is being overwritten
    z1_decompress(comp_.data(), comp_.size(), memo_.data(),
                  elems * sizeof(dist_t));
    memo_tile_ = static_cast<std::int64_t>(t);
    return memo_;
  }

  ZIndex ix_;
  std::FILE* file_ = nullptr;
  std::string path_;
  vidx_t tile_ = 0;
  vidx_t tps_ = 0;
  // One stateful stream, like FileStore: concurrent readers must serialize.
  mutable std::vector<std::uint8_t> comp_;
  mutable std::vector<dist_t> memo_;
  mutable std::int64_t memo_tile_ = -1;
};

}  // namespace

StoreCompactionStats write_compressed_store(const DistStore& src,
                                            const std::string& out_path,
                                            vidx_t tile) {
  const vidx_t n = src.n();
  GAPSP_CHECK(n > 0, "cannot compress an empty store");
  GAPSP_CHECK(tile > 0, "tile side must be positive");
  tile = std::min(tile, n);
  const vidx_t tps = (n + tile - 1) / tile;

  Timer timer;
  StoreCompactionStats stats;
  stats.raw_bytes = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) * sizeof(dist_t);

  ZHeader h{};
  std::memcpy(h.magic, kZMagic, sizeof(kZMagic));
  h.n = n;
  h.tile = tile;
  h.tiles_per_side = tps;
  std::vector<ZDirEntry> dir(static_cast<std::size_t>(tps) *
                             static_cast<std::size_t>(tps));

  const std::string tmp = out_path + ".ztmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file.f == nullptr) {
    throw IoError("cannot open " + tmp + " for writing");
  }
  const auto write_all = [&](const void* p, std::size_t bytes) {
    if (bytes != 0 && std::fwrite(p, 1, bytes, file.f) != bytes) {
      std::remove(tmp.c_str());
      throw IoError("short write to " + tmp);
    }
  };
  try {
    // Placeholder header+directory; rewritten once the offsets are known.
    write_all(&h, sizeof(h));
    write_all(dir.data(), dir.size() * sizeof(ZDirEntry));
    std::uint64_t offset = sizeof(ZHeader) + dir.size() * sizeof(ZDirEntry);
    std::vector<dist_t> buf;
    std::vector<std::uint8_t> frame;
    for (vidx_t bi = 0; bi < tps; ++bi) {
      for (vidx_t bj = 0; bj < tps; ++bj) {
        const vidx_t rows = std::min<vidx_t>(tile, n - bi * tile);
        const vidx_t cols = std::min<vidx_t>(tile, n - bj * tile);
        const std::size_t elems =
            static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
        buf.resize(elems);
        src.read_block(bi * tile, bj * tile, rows, cols, buf.data(),
                       static_cast<std::size_t>(cols));
        ++stats.tiles;
        ZDirEntry& e = dir[static_cast<std::size_t>(bi) * tps + bj];
        if (all_inf(buf.data(), elems)) {
          ++stats.inf_tiles;
          continue;  // zero-length entry: the directory is the payload
        }
        z1_compress(buf.data(), elems * sizeof(dist_t), frame);
        e.offset = offset;
        e.bytes = frame.size();
        offset += frame.size();
        h.payload_bytes += frame.size();
        write_all(frame.data(), frame.size());
      }
    }
    h.dir_checksum = fnv1a(dir.data(), dir.size() * sizeof(ZDirEntry));
    stats.compressed_bytes = offset;
    seek_to(file.f, 0, tmp);
    write_all(&h, sizeof(h));
    write_all(dir.data(), dir.size() * sizeof(ZDirEntry));
    if (std::fflush(file.f) != 0) {
      throw IoError("flush failed for " + tmp);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  const bool closed = std::fclose(file.release()) == 0;
  if (!closed) {
    std::remove(tmp.c_str());
    throw IoError("close failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + out_path);
  }
  stats.seconds = timer.seconds();
  return stats;
}

StoreCompactionStats compact_store(const std::string& raw_path,
                                   const std::string& out_path, vidx_t tile) {
  if (is_compressed_store(raw_path)) {
    throw IoError(raw_path + " is already a GAPSPZ1 compressed store");
  }
  const auto src = open_file_store(raw_path);
  return write_compressed_store(*src, out_path, tile);
}

bool is_compressed_store(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) return false;
  char magic[8] = {};
  if (std::fread(magic, 1, sizeof(magic), file.f) != sizeof(magic)) {
    return false;
  }
  return std::memcmp(magic, kZMagic, sizeof(kZMagic)) == 0;
}

CompressedStoreInfo compressed_store_info(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    throw IoError("cannot open dist store file " + path);
  }
  const ZIndex ix = read_index(file.f, path);
  CompressedStoreInfo info;
  info.n = static_cast<vidx_t>(ix.h.n);
  info.tile = static_cast<vidx_t>(ix.h.tile);
  info.tiles_per_side = static_cast<vidx_t>(ix.h.tiles_per_side);
  info.file_bytes = ix.file_bytes;
  info.raw_bytes = static_cast<std::uint64_t>(ix.h.n) *
                   static_cast<std::uint64_t>(ix.h.n) * sizeof(dist_t);
  info.tiles = static_cast<long long>(ix.dir.size());
  for (const ZDirEntry& e : ix.dir) {
    if (e.bytes == 0) ++info.inf_tiles;
  }
  return info;
}

CompressedDirectory read_compressed_directory(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    throw IoError("cannot open dist store file " + path);
  }
  const ZIndex ix = read_index(file.f, path);
  CompressedDirectory dir;
  dir.n = static_cast<vidx_t>(ix.h.n);
  dir.tile = static_cast<vidx_t>(ix.h.tile);
  dir.tiles_per_side = static_cast<vidx_t>(ix.h.tiles_per_side);
  dir.entries.reserve(ix.dir.size());
  for (const ZDirEntry& e : ix.dir) {
    dir.entries.push_back({e.offset, e.bytes});
  }
  return dir;
}

std::unique_ptr<DistStore> open_compressed_store(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    throw IoError("cannot open dist store file " + path);
  }
  ZIndex ix = read_index(file.f, path);
  return std::make_unique<CompressedStore>(std::move(ix), file.release(),
                                           path);
}

std::unique_ptr<DistStore> open_store(const std::string& path) {
  return is_compressed_store(path) ? open_compressed_store(path)
                                   : open_file_store(path);
}

}  // namespace gapsp::core
