// Block-compressed distance store ("GAPSPZ1") and its codec.
//
// The solved n×n matrix is the object the paper says we cannot afford to
// move: output bytes dominate both the disk footprint and the host I/O time
// of every out-of-core run. Road-like and kInf-dominated matrices are highly
// compressible (unreachable pairs are a single repeated 4-byte pattern), so
// the kept store is compressed — but only at the *sinks*. Blocked FW
// rewrites every tile O(n_d) times, so the solve loop keeps writing the raw
// FileStore; compression happens where bytes leave the hot loop for good:
// checkpoint sidecar payloads, the post-solve `--keep-store` compaction, and
// the read-only serving path (QueryEngine/BlockCache decompress tiles on the
// cache miss path). See DESIGN.md §11.
//
// File layout (same-machine binary, like the GAPSPCK1 sidecars):
//   ZHeader (64 bytes: magic "GAPSPZ1\0", n, tile, tiles_per_side,
//            payload_bytes, directory checksum)
//   directory: tiles_per_side² × {u64 offset, u64 bytes}, row-major tiles;
//              bytes == 0 marks an all-kInf tile with no stored payload
//   payload: concatenated z1 frames, one per non-empty tile
//
// Codec ("z1"): a hand-rolled LZ4-style byte stream — no new dependencies.
// The codec itself lives in core/z1_codec.h (shared with the compressed
// host↔device transfer path); this header re-exports it for existing users.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dist_store.h"
#include "core/z1_codec.h"
#include "util/common.h"

namespace gapsp::core {

// ---- GAPSPZ1 store ----

/// Outcome of one compaction, surfaced in ApspMetrics and the CLI summary.
struct StoreCompactionStats {
  std::uint64_t raw_bytes = 0;         ///< n² · sizeof(dist_t)
  std::uint64_t compressed_bytes = 0;  ///< whole output file, header included
  long long tiles = 0;
  long long inf_tiles = 0;  ///< all-kInf tiles stored as zero-length entries
  double seconds = 0.0;
  double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// Writes `src` to `out_path` as a GAPSPZ1 store with `tile`-sided tiles
/// (clamped to n; edge tiles are ragged). Atomic: a sibling tmp file is
/// renamed over `out_path` only once complete.
StoreCompactionStats write_compressed_store(const DistStore& src,
                                            const std::string& out_path,
                                            vidx_t tile = 256);

/// Compacts the raw kept store at `raw_path` into a GAPSPZ1 store at
/// `out_path` (the same path compacts in place). Throws IoError when
/// `raw_path` is already compressed or is not a square dist_t matrix.
StoreCompactionStats compact_store(const std::string& raw_path,
                                   const std::string& out_path,
                                   vidx_t tile = 256);

/// True when the file at `path` starts with the GAPSPZ1 magic.
bool is_compressed_store(const std::string& path);

/// Header-level facts about a compressed store, without decompressing.
struct CompressedStoreInfo {
  vidx_t n = 0;
  vidx_t tile = 0;
  vidx_t tiles_per_side = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t raw_bytes = 0;
  long long tiles = 0;
  long long inf_tiles = 0;
};

/// Reads and validates the header+directory. Throws IoError on corruption.
CompressedStoreInfo compressed_store_info(const std::string& path);

/// One tile's frame location inside a GAPSPZ1 file (bytes == 0 marks an
/// all-kInf tile with no stored payload).
struct CompressedTileEntry {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

/// The validated geometry + tile directory of a GAPSPZ1 store, for tools
/// that relocate compressed frames without decompressing them (the
/// row-range shard slicer, core/shard_store.h). Throws IoError/CorruptError
/// exactly like open_compressed_store.
struct CompressedDirectory {
  vidx_t n = 0;
  vidx_t tile = 0;
  vidx_t tiles_per_side = 0;
  std::vector<CompressedTileEntry> entries;  ///< row-major tile grid
};
CompressedDirectory read_compressed_directory(const std::string& path);

/// Opens a GAPSPZ1 store read-only. read_block decompresses the overlapped
/// tiles (all-kInf tiles are synthesized from the directory without I/O);
/// write_block throws IoError. Like FileStore, the returned store is one
/// stateful stream — callers serialize concurrent reads (QueryEngine's miss
/// path already does). tile_size() reports the stored tiling so caches can
/// align to it, and block_known_inf() answers from the directory alone.
std::unique_ptr<DistStore> open_compressed_store(const std::string& path);

/// Serving entry point: sniffs the magic and opens either a raw kept store
/// (open_file_store) or a GAPSPZ1 store (open_compressed_store).
std::unique_ptr<DistStore> open_store(const std::string& path);

}  // namespace gapsp::core
