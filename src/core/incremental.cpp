#include "core/incremental.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/apsp.h"
#include "core/checkpoint.h"
#include "core/cost_model.h"
#include "core/minplus.h"
#include "sssp/dijkstra.h"
#include "util/thread_pool.h"

namespace gapsp::core {
namespace {

// GAPSPCK1 `algorithm` tag of a delta checkpoint — outside the
// core::Algorithm range so a solver checkpoint can never be mistaken for a
// delta sidecar (or vice versa).
constexpr std::uint32_t kDeltaAlgorithm = 0x494E4331;  // "INC1"

// Checkpoint payload mode byte.
constexpr std::uint8_t kModeRepair = 0;
constexpr std::uint8_t kModeFullSolve = 1;

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::uint64_t arc_key(vidx_t u, vidx_t v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

bool has_zero_weight_arc(const graph::CsrGraph& g) {
  for (const dist_t w : g.edge_weights()) {
    if (w == 0) return true;
  }
  return false;
}

// Monotone bucket queue (Dial): SWSF-FP pops keys in nondecreasing order,
// so a cursor over per-key buckets replaces the O(log q) heap with O(1)
// array ops. Buckets grow lazily to the largest key actually seen; a key
// past kMaxKey reports failure and the caller re-runs that row with a
// fresh Dijkstra (possible only with extreme weights, never with the
// road/mesh/er suites).
class BucketQueue {
 public:
  static constexpr dist_t kMaxKey = 1 << 20;

  [[nodiscard]] bool push(dist_t key, vidx_t v) {
    if (key > kMaxKey) return false;
    const auto k = static_cast<std::size_t>(key);
    if (k >= buckets_.size()) buckets_.resize(k + 1);
    buckets_[k].push_back(v);
    if (k < cursor_) cursor_ = k;  // defensive: monotone by the invariant
    ++size_;
    return true;
  }
  bool empty() const { return size_ == 0; }
  std::pair<dist_t, vidx_t> pop() {
    while (buckets_[cursor_].empty()) ++cursor_;
    const vidx_t v = buckets_[cursor_].back();
    buckets_[cursor_].pop_back();
    --size_;
    return {static_cast<dist_t>(cursor_), v};
  }
  /// Ready the queue for another row, keeping bucket capacity (the repair
  /// loop reuses one queue across every row it repairs — per-row
  /// construction/destruction of the bucket array would dominate small
  /// regions). Buckets may hold leftovers after a bailed run.
  void reset() {
    if (size_ != 0) {
      for (auto& b : buckets_) b.clear();
      size_ = 0;
    }
    cursor_ = 0;
  }

 private:
  std::vector<std::vector<vidx_t>> buckets_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

// Dynamic SWSF-FP (Ramalingam–Reps) repair of one SSSP row after weight
// increases: `d` holds the row's exact pre-update distances by vertex and is
// repaired in place to the exact distances of `mid`. Output-sensitive — the
// queue only ever holds vertices whose distance actually depends on an
// increased arc, so cost scales with the row's affected region, not with
// the graph (a fresh Dijkstra pays O(m log n) per row even when a single
// entry changed). Requires strictly positive arc weights: zero-weight ties
// break the monotone queue-order argument, so the caller falls back to a
// fresh Dijkstra for such graphs. Returns false when a queue key overflowed
// the bucket range — `d` is then garbage and the caller must recompute the
// row from scratch.
[[nodiscard]] bool repair_row_swsf(const graph::CsrGraph& mid,
                                   const graph::CsrGraph& rev, vidx_t src,
                                   std::span<const EdgeUpdate> increases,
                                   std::span<const dist_t> w_old,
                                   std::span<dist_t> d,
                                   std::vector<dist_t>& rhs, BucketQueue& pq) {
  // rhs(v) = best distance v can claim through its current in-neighbors
  // (post-increase weights). The pre-update row is consistent under the OLD
  // weights, and a non-tight arc's increase cannot change its head's rhs,
  // so initializing rhs = d and recomputing only at tight heads is exact.
  rhs.assign(d.begin(), d.end());
  pq.reset();
  const auto recompute_rhs = [&](vidx_t v) -> dist_t {
    if (v == src) return 0;
    dist_t best = kInf;
    const auto xs = rev.neighbors(v);
    const auto ws = rev.weights(v);
    for (std::size_t e = 0; e < xs.size(); ++e) {
      best = std::min(
          best, sat_add(d[static_cast<std::size_t>(xs[e])], ws[e]));
    }
    return best;
  };
  bool ok = true;
  const auto touch = [&](vidx_t v) {
    const std::size_t i = v;
    if (rhs[i] != d[i]) ok = ok && pq.push(std::min(rhs[i], d[i]), v);
  };
  // Only heads whose arc was tight for this row can have lost their
  // distance; everything else is untouched by construction.
  for (std::size_t a = 0; a < increases.size(); ++a) {
    const EdgeUpdate& up = increases[a];
    const dist_t du = d[static_cast<std::size_t>(up.u)];
    if (du < kInf &&
        sat_add(du, w_old[a]) == d[static_cast<std::size_t>(up.v)]) {
      rhs[static_cast<std::size_t>(up.v)] = recompute_rhs(up.v);
      touch(up.v);
    }
  }
  while (ok && !pq.empty()) {
    const auto [k, v] = pq.pop();
    dist_t& dv = d[static_cast<std::size_t>(v)];
    const dist_t rv = rhs[static_cast<std::size_t>(v)];
    if (dv == rv) continue;  // consistent: lazily-deleted stale entry
    const dist_t key = std::min(dv, rv);
    if (k < key) {  // key rose after insertion: re-queue in order
      ok = ok && pq.push(key, v);
      continue;
    }
    const auto ys = mid.neighbors(v);
    const auto yw = mid.weights(v);
    if (dv > rv) {
      dv = rv;  // overconsistent: settle downward, lower successors' rhs
      for (std::size_t e = 0; e < ys.size(); ++e) {
        const std::size_t y = ys[e];
        const dist_t cand = sat_add(dv, yw[e]);
        if (cand < rhs[y]) {
          rhs[y] = cand;
          touch(ys[e]);
        }
      }
    } else {
      const dist_t old = dv;
      dv = kInf;  // underconsistent: detach, let it re-derive a distance
      touch(v);
      // Only successors whose rhs went THROUGH v can be affected.
      for (std::size_t e = 0; e < ys.size(); ++e) {
        const std::size_t y = ys[e];
        if (y != static_cast<std::size_t>(src) &&
            rhs[y] == sat_add(old, yw[e])) {
          rhs[y] = recompute_rhs(ys[e]);
          touch(ys[e]);
        }
      }
    }
  }
  return ok;
}

// Weight of arc u->v in g, kInf when absent. CSR collapses parallel arcs,
// so the first hit is the weight.
dist_t arc_weight(const graph::CsrGraph& g, vidx_t u, vidx_t v) {
  const auto nbrs = g.neighbors(u);
  const auto ws = g.weights(u);
  for (std::size_t e = 0; e < nbrs.size(); ++e) {
    if (nbrs[e] == v) return ws[e];
  }
  return kInf;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* p,
                  std::size_t bytes) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + bytes);
}

}  // namespace

std::vector<EdgeUpdate> read_edge_updates(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open update file: " + path);
  std::vector<EdgeUpdate> updates;
  std::string line;
  long long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    std::string w_tok;
    if (!(ls >> u >> v >> w_tok)) {
      throw Error("malformed update line " + std::to_string(lineno) + ": " +
                  line);
    }
    EdgeUpdate up;
    up.u = static_cast<vidx_t>(u);
    up.v = static_cast<vidx_t>(v);
    if (w_tok == "inf" || w_tok == "x" || w_tok == "-1") {
      up.w = kInf;
    } else {
      std::size_t pos = 0;
      long long w = 0;
      try {
        w = std::stoll(w_tok, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != w_tok.size() || w < 0) {
        throw Error("bad update weight on line " + std::to_string(lineno) +
                    ": " + w_tok);
      }
      up.w = w >= kInf ? kInf : static_cast<dist_t>(w);
    }
    updates.push_back(up);
  }
  return updates;
}

graph::CsrGraph apply_edge_updates(const graph::CsrGraph& g,
                                   std::span<const EdgeUpdate> updates) {
  const vidx_t n = g.num_vertices();
  std::unordered_map<std::uint64_t, dist_t> patch;
  patch.reserve(updates.size());
  for (const EdgeUpdate& up : updates) {
    GAPSP_CHECK(up.u >= 0 && up.u < n && up.v >= 0 && up.v < n,
                "edge update endpoint out of range");
    GAPSP_CHECK(up.w >= 0, "negative update weight");
    patch[arc_key(up.u, up.v)] = up.w;  // last update of an arc wins
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()) + patch.size());
  for (vidx_t u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      if (patch.count(arc_key(u, nbrs[e])) != 0) continue;  // replaced below
      edges.push_back({u, nbrs[e], ws[e]});
    }
  }
  for (const auto& [key, w] : patch) {
    if (w >= kInf) continue;  // delete
    edges.push_back({static_cast<vidx_t>(key >> 32),
                     static_cast<vidx_t>(key & 0xffffffffu), w});
  }
  return graph::CsrGraph::from_edges(n, std::move(edges), false);
}

std::uint64_t incremental_fingerprint(const graph::CsrGraph& g,
                                      std::span<const EdgeUpdate> updates,
                                      vidx_t tile, double damage_threshold) {
  std::uint64_t fp = graph_fingerprint(g);
  for (const EdgeUpdate& up : updates) {
    fp = fnv1a(&up.u, sizeof(up.u), fp);
    fp = fnv1a(&up.v, sizeof(up.v), fp);
    fp = fnv1a(&up.w, sizeof(up.w), fp);
  }
  fp = fnv1a(&tile, sizeof(tile), fp);
  fp = fnv1a(&damage_threshold, sizeof(damage_threshold), fp);
  return fp;
}

struct IncrementalEngine::Classified {
  // Deduped non-noop updates in first-seen arc order (deterministic).
  std::vector<EdgeUpdate> decreases;      // new weight (< old)
  std::vector<EdgeUpdate> increases;      // new weight (> old)
  std::vector<dist_t> increases_w_old;    // parallel to `increases`
  std::vector<EdgeUpdate> all;            // every deduped non-noop update
};

IncrementalEngine::IncrementalEngine(const graph::CsrGraph& g,
                                     IncrementalOptions opt,
                                     std::vector<vidx_t> perm)
    : g_(g), opt_(std::move(opt)), perm_(std::move(perm)) {
  GAPSP_CHECK(opt_.tile > 0, "incremental tile must be positive");
  GAPSP_CHECK(opt_.checkpoint_every_tiles > 0,
              "checkpoint interval must be positive");
  if (!perm_.empty()) {
    GAPSP_CHECK(static_cast<vidx_t>(perm_.size()) == g_.num_vertices(),
                "permutation size mismatch");
    inv_perm_.assign(perm_.size(), 0);
    for (std::size_t v = 0; v < perm_.size(); ++v) {
      inv_perm_[static_cast<std::size_t>(perm_[v])] = static_cast<vidx_t>(v);
    }
  }
}

void IncrementalEngine::classify(std::span<const EdgeUpdate> updates,
                                 Classified& out,
                                 UpdateOutcome& outcome) const {
  const vidx_t n = g_.num_vertices();
  // Dedup keeping the LAST update per arc but the FIRST-seen arc order, so
  // the batch digest — and with it every downstream decision — is
  // deterministic in the input order.
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<EdgeUpdate> deduped;
  for (const EdgeUpdate& up : updates) {
    GAPSP_CHECK(up.u >= 0 && up.u < n && up.v >= 0 && up.v < n,
                "edge update endpoint out of range");
    GAPSP_CHECK(up.w >= 0, "negative update weight");
    const auto [it, inserted] = index.try_emplace(arc_key(up.u, up.v),
                                                  deduped.size());
    if (inserted) {
      deduped.push_back(up);
    } else {
      deduped[it->second].w = up.w;
    }
  }
  for (EdgeUpdate up : deduped) {
    if (up.w >= kInf) up.w = kInf;
    if (up.u == up.v) {  // self-loops never enter a shortest path
      ++outcome.noops;
      continue;
    }
    const dist_t w_old = arc_weight(g_, up.u, up.v);
    if (up.w == w_old) {
      ++outcome.noops;
      continue;
    }
    out.all.push_back(up);
    if (up.w < w_old) {
      out.decreases.push_back(up);
      ++outcome.decreases;
    } else {
      out.increases.push_back(up);
      out.increases_w_old.push_back(w_old);
      ++outcome.increases;
    }
  }
}

UpdateOutcome IncrementalEngine::apply(const DistStore& pristine,
                                       std::span<const EdgeUpdate> updates,
                                       const TileSink& sink) {
  const double t_start = now_s();
  const vidx_t n = g_.num_vertices();
  GAPSP_CHECK(pristine.n() == n, "store dimension does not match the graph");

  UpdateOutcome outcome;
  Classified cls;
  classify(updates, cls, outcome);
  g_final_ = apply_edge_updates(g_, cls.all);

  vidx_t tile = opt_.tile;
  if (pristine.tile_size() > 0) tile = pristine.tile_size();
  if (tile > n && n > 0) tile = n;
  const vidx_t nb = n > 0 ? (n + tile - 1) / tile : 0;
  outcome.tiles_total = static_cast<long long>(nb) * nb;

  // Fingerprint the RAW batch, not the classified one: callers gating their
  // own resume logic (apsp_cli's keep-the-tmp-copy decision) can only hash
  // what they passed in, and a fingerprint mismatch between the engine and
  // its caller makes the caller re-copy the pristine matrix over tiles the
  // checkpoint then skips — silent stale data on resume.
  const std::uint64_t fp =
      incremental_fingerprint(g_, updates, tile, opt_.damage_threshold);

  // ---- Phase A: increase probe ---------------------------------------
  // DR = rows whose stored distances may have used an increased arc. Two
  // column reads per arc; conservative superset of the truly damaged rows.
  const double t_probe = now_s();
  std::vector<std::uint8_t> damaged_row(static_cast<std::size_t>(n), 0);
  {
    std::unordered_map<vidx_t, std::vector<dist_t>> col_cache;
    auto column = [&](vidx_t c) -> const std::vector<dist_t>& {
      auto it = col_cache.find(c);
      if (it != col_cache.end()) return it->second;
      std::vector<dist_t> col(static_cast<std::size_t>(n));
      pristine.read_block(0, c, n, 1, col.data(), 1);
      return col_cache.emplace(c, std::move(col)).first->second;
    };
    for (std::size_t a = 0; a < cls.increases.size(); ++a) {
      const EdgeUpdate& up = cls.increases[a];
      const dist_t w_old = cls.increases_w_old[a];
      const vidx_t su = perm_.empty() ? up.u : perm_[up.u];
      const vidx_t sv = perm_.empty() ? up.v : perm_[up.v];
      const std::vector<dist_t>& col_u = column(su);
      const std::vector<dist_t>& col_v = column(sv);
      for (vidx_t i = 0; i < n; ++i) {
        const dist_t du = col_u[static_cast<std::size_t>(i)];
        if (du < kInf && sat_add(du, w_old) == col_v[static_cast<std::size_t>(i)]) {
          damaged_row[static_cast<std::size_t>(i)] = 1;
        }
      }
    }
  }
  std::size_t probe_hits = 0;
  for (vidx_t i = 0; i < n; ++i) {
    probe_hits += damaged_row[static_cast<std::size_t>(i)] != 0;
  }

  // g_mid (increases applied) is needed by the refinement below and by the
  // phase-B row recomputes; build it once.
  graph::CsrGraph g_mid;
  graph::CsrGraph rev_mid;
  const graph::CsrGraph* mid = &g_;
  if (!cls.increases.empty()) {
    g_mid = apply_edge_updates(g_, cls.increases);
    mid = &g_mid;
    rev_mid = g_mid.transpose();
  }

  // ---- Probe refinement ----------------------------------------------
  // The equality test fires on every shortest-path tie, and road-like
  // graphs with small integer weights tie constantly — the superset can
  // approach n while the truly damaged set stays tiny (and the damage
  // threshold then tips a cheap repair into a full re-solve). When the
  // batch has fewer distinct increased-arc heads than probe hits, compute
  // the exact new column of each head (one reverse-graph Dijkstra over
  // g_mid per head) and keep only rows whose head column actually grew.
  // Exact: a changed pair (i,j) has an old shortest path through some
  // increased arc; take the LAST such arc (u,v) on it — the suffix v→j
  // avoids every increased arc and survives in g_mid, so
  // d_mid(i,j) <= d_mid(i,v) + d_old(v,j), and row i can only change if
  // some head column d_mid(i,v) grew.
  std::vector<vidx_t> heads;
  if (probe_hits > 0) {
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (const EdgeUpdate& up : cls.increases) {
      if (!seen[static_cast<std::size_t>(up.v)]) {
        seen[static_cast<std::size_t>(up.v)] = 1;
        heads.push_back(up.v);
      }
    }
  }
  if (!heads.empty() && heads.size() < probe_hits) {
    // One exact new column per head, filled in parallel, merged serially.
    std::vector<dist_t> new_cols(heads.size() * static_cast<std::size_t>(n));
    ThreadPool::global().parallel_for(
        heads.size(),
        [&](std::size_t h) {
          std::vector<dist_t> to_head(static_cast<std::size_t>(n));
          sssp::dijkstra_into(rev_mid, heads[h], to_head);
          std::memcpy(new_cols.data() + h * static_cast<std::size_t>(n),
                      to_head.data(), to_head.size() * sizeof(dist_t));
        },
        1);
    std::fill(damaged_row.begin(), damaged_row.end(), 0);
    std::vector<dist_t> old_col(static_cast<std::size_t>(n));
    for (std::size_t h = 0; h < heads.size(); ++h) {
      const vidx_t sc = perm_.empty() ? heads[h] : perm_[heads[h]];
      pristine.read_block(0, sc, n, 1, old_col.data(), 1);
      const dist_t* col = new_cols.data() + h * static_cast<std::size_t>(n);
      for (vidx_t x = 0; x < n; ++x) {
        const vidx_t sx = perm_.empty() ? x : perm_[static_cast<std::size_t>(x)];
        if (col[static_cast<std::size_t>(x)] !=
            old_col[static_cast<std::size_t>(sx)]) {
          damaged_row[static_cast<std::size_t>(sx)] = 1;
        }
      }
    }
  }

  std::vector<vidx_t> dr;
  for (vidx_t i = 0; i < n; ++i) {
    if (damaged_row[static_cast<std::size_t>(i)]) dr.push_back(i);
  }
  outcome.damaged_rows = static_cast<long long>(dr.size());
  outcome.probe_seconds = now_s() - t_probe;

  const bool full_solve =
      !cls.increases.empty() &&
      static_cast<double>(dr.size()) >
          opt_.damage_threshold * static_cast<double>(n);
  outcome.full_solve = full_solve;

  // ---- Delta checkpoint: match an existing sidecar -------------------
  const std::uint8_t mode = full_solve ? kModeFullSolve : kModeRepair;
  long long start_tile = 0;
  std::vector<std::uint8_t> resumed_payload;
  if (opt_.resume && !opt_.checkpoint_path.empty()) {
    Checkpoint ck;
    if (read_checkpoint(opt_.checkpoint_path, &ck) &&
        ck.algorithm == kDeltaAlgorithm && ck.fingerprint == fp &&
        ck.n == n && ck.aux0 == tile && !ck.payload.empty() &&
        ck.payload[0] == mode) {
      start_tile = ck.progress;
      resumed_payload = std::move(ck.payload);
    }
  }

  // ---- Phase B: SSSP row repair over g_mid (increases only) ----------
  // g_mid's exact distances differ from the pristine store only on DR
  // rows; recomputing exactly those rows yields exact APSP of g_mid, the
  // input the decrease phase needs.
  const double t_sssp = now_s();
  std::vector<int> dr_index(static_cast<std::size_t>(n), -1);
  for (std::size_t a = 0; a < dr.size(); ++a) {
    dr_index[static_cast<std::size_t>(dr[a])] = static_cast<int>(a);
  }
  // Repaired rows, stored order, one length-n row per DR entry.
  std::vector<dist_t> dr_rows(dr.size() * static_cast<std::size_t>(n));
  bool rows_restored = false;
  if (!full_solve && !dr.empty()) {
    // A matching checkpoint carries the phase-B rows; reuse them instead of
    // re-running the Dijkstras (the payload is checksummed, and the id list
    // is verified against the freshly recomputed probe).
    if (!resumed_payload.empty()) {
      const std::size_t need = 1 + sizeof(std::uint64_t) +
                               dr.size() * sizeof(vidx_t) +
                               dr_rows.size() * sizeof(dist_t);
      if (resumed_payload.size() == need) {
        std::uint64_t count = 0;
        std::memcpy(&count, resumed_payload.data() + 1, sizeof(count));
        if (count == dr.size()) {
          std::vector<vidx_t> ids(dr.size());
          std::memcpy(ids.data(), resumed_payload.data() + 1 + sizeof(count),
                      ids.size() * sizeof(vidx_t));
          if (ids == dr) {
            std::memcpy(dr_rows.data(),
                        resumed_payload.data() + 1 + sizeof(count) +
                            ids.size() * sizeof(vidx_t),
                        dr_rows.size() * sizeof(dist_t));
            rows_restored = true;
          }
        }
      }
      if (!rows_restored) start_tile = 0;  // incompatible payload: fresh run
    }
    if (!rows_restored) {
      // Load the old rows as the repair input, banded so a compressed
      // pristine store decompresses each tile band once, not once per row
      // (serial: DistStore reads are not thread-safe).
      {
        std::vector<dist_t> band(static_cast<std::size_t>(tile) *
                                 static_cast<std::size_t>(n));
        for (std::size_t a = 0; a < dr.size();) {
          const vidx_t r0 = (dr[a] / tile) * tile;
          const vidx_t rows = std::min<vidx_t>(tile, n - r0);
          pristine.read_block(r0, 0, rows, n, band.data(),
                              static_cast<std::size_t>(n));
          while (a < dr.size() && dr[a] < r0 + rows) {
            std::memcpy(dr_rows.data() + a * static_cast<std::size_t>(n),
                        band.data() +
                            static_cast<std::size_t>(dr[a] - r0) * n,
                        static_cast<std::size_t>(n) * sizeof(dist_t));
            ++a;
          }
        }
      }
      // Zero-weight arcs break SWSF's queue-order argument; such graphs
      // take the fresh-Dijkstra path per row instead.
      const bool swsf = !has_zero_weight_arc(*mid);
      ThreadPool::global().parallel_for(
          dr.size(),
          [&](std::size_t a) {
            const vidx_t row = dr[a];
            const vidx_t src =
                perm_.empty() ? row : inv_perm_[static_cast<std::size_t>(row)];
            dist_t* out = dr_rows.data() + a * static_cast<std::size_t>(n);
            // Per-thread scratch: one queue/buffer pair serves every row a
            // worker repairs, so a row whose region is a handful of
            // vertices is not charged a fresh allocation round-trip.
            static thread_local std::vector<dist_t> by_vertex;
            static thread_local std::vector<dist_t> rhs_scratch;
            static thread_local BucketQueue pq_scratch;
            by_vertex.resize(static_cast<std::size_t>(n));
            if (swsf) {
              // With the identity permutation the stored row IS the
              // by-vertex row: repair it in place, no copies.
              dist_t* d = out;
              if (!perm_.empty()) {
                for (vidx_t v = 0; v < n; ++v) {
                  by_vertex[static_cast<std::size_t>(v)] =
                      out[perm_[static_cast<std::size_t>(v)]];
                }
                d = by_vertex.data();
              }
              std::span<dist_t> drow(d, static_cast<std::size_t>(n));
              if (!repair_row_swsf(*mid, rev_mid, src, cls.increases,
                                   cls.increases_w_old, drow, rhs_scratch,
                                   pq_scratch)) {
                // Bucket-key overflow (extreme weight range): the row is
                // part-repaired garbage, recompute it whole.
                sssp::dijkstra_into(*mid, src, by_vertex);
                if (perm_.empty()) {
                  std::memcpy(out, by_vertex.data(),
                              by_vertex.size() * sizeof(dist_t));
                }
              }
              if (!perm_.empty()) {
                for (vidx_t v = 0; v < n; ++v) {
                  out[perm_[static_cast<std::size_t>(v)]] =
                      by_vertex[static_cast<std::size_t>(v)];
                }
              }
            } else {
              sssp::dijkstra_into(*mid, src, by_vertex);
              if (perm_.empty()) {
                std::memcpy(out, by_vertex.data(),
                            by_vertex.size() * sizeof(dist_t));
              } else {
                for (vidx_t v = 0; v < n; ++v) {
                  out[perm_[static_cast<std::size_t>(v)]] =
                      by_vertex[static_cast<std::size_t>(v)];
                }
              }
            }
          },
          1);
    }
  }
  outcome.sssp_seconds = now_s() - t_sssp;

  auto read_pristine_tile = [&](vidx_t r0, vidx_t c0, vidx_t rows,
                                vidx_t cols, dist_t* dst) {
    if (pristine.block_known_inf(r0, c0, rows, cols)) {
      std::fill_n(dst, static_cast<std::size_t>(rows) * cols, kInf);
    } else {
      pristine.read_block(r0, c0, rows, cols, dst,
                          static_cast<std::size_t>(cols));
    }
  };

  auto write_delta_checkpoint = [&](long long progress,
                                    const std::vector<std::uint8_t>& payload) {
    // The sink's buffers must reach the OS before the checkpoint claims its
    // tiles: a SIGKILL between a buffered emit and the checkpoint write
    // would otherwise resume past bytes that never landed.
    if (opt_.sync_before_checkpoint) opt_.sync_before_checkpoint();
    Checkpoint ck;
    ck.algorithm = kDeltaAlgorithm;
    ck.fingerprint = fp;
    ck.n = n;
    ck.progress = progress;
    ck.aux0 = tile;
    ck.aux1 = static_cast<std::int64_t>(dr.size());
    ck.payload = payload;
    write_checkpoint(opt_.checkpoint_path, ck);
    ++outcome.checkpoints_written;
  };

  // ---- Fallback: full layout-preserving re-solve ---------------------
  if (full_solve) {
    std::vector<std::uint8_t> payload{kModeFullSolve};
    if (!opt_.checkpoint_path.empty() && start_tile == 0) {
      write_delta_checkpoint(0, payload);
    }
    auto fresh = make_ram_store(n);
    if (perm_.empty()) {
      ApspOptions sopt = opt_.solve_opts;
      if (sopt.algorithm == Algorithm::kAuto) {
        sopt.algorithm = Algorithm::kBlockedFloydWarshall;
      }
      sopt.checkpoint_path.clear();
      sopt.resume = false;
      const ApspResult r = solve_apsp(g_final_, sopt, *fresh);
      GAPSP_CHECK(r.perm.empty(),
                  "full-solve fallback must preserve the store layout");
    } else {
      // Permuted stores re-solve by SSSP sweep so the layout survives.
      ThreadPool::global().parallel_for(
          static_cast<std::size_t>(n),
          [&](std::size_t i) {
            const vidx_t src = inv_perm_[i];
            std::vector<dist_t> by_vertex(static_cast<std::size_t>(n));
            sssp::dijkstra_into(g_final_, src, by_vertex);
            std::vector<dist_t> row(static_cast<std::size_t>(n));
            for (vidx_t v = 0; v < n; ++v) {
              row[perm_[static_cast<std::size_t>(v)]] =
                  by_vertex[static_cast<std::size_t>(v)];
            }
            fresh->write_block(static_cast<vidx_t>(i), 0, 1, n, row.data(),
                               static_cast<std::size_t>(n));
          },
          1);
    }
    // Emit every changed tile, deterministic (bi, bj) order.
    const double t_tiles = now_s();
    std::vector<dist_t> cur(static_cast<std::size_t>(tile) * tile);
    std::vector<dist_t> neu(static_cast<std::size_t>(tile) * tile);
    long long idx = 0;
    for (vidx_t bi = 0; bi < nb; ++bi) {
      for (vidx_t bj = 0; bj < nb; ++bj) {
        ++outcome.tiles_candidate;
        if (idx < start_tile) {
          ++idx;
          ++outcome.tiles_resumed;
          continue;
        }
        const vidx_t r0 = bi * tile, c0 = bj * tile;
        const vidx_t rows = std::min(tile, n - r0);
        const vidx_t cols = std::min(tile, n - c0);
        const std::size_t elems = static_cast<std::size_t>(rows) * cols;
        read_pristine_tile(r0, c0, rows, cols, cur.data());
        fresh->read_block(r0, c0, rows, cols, neu.data(),
                          static_cast<std::size_t>(cols));
        if (std::memcmp(cur.data(), neu.data(), elems * sizeof(dist_t)) != 0) {
          sink(bi, bj, r0, c0, rows, cols, neu.data());
          ++outcome.tiles_touched;
        }
        ++idx;
        if (!opt_.checkpoint_path.empty() &&
            idx % opt_.checkpoint_every_tiles == 0) {
          write_delta_checkpoint(idx, payload);
        }
      }
    }
    outcome.tile_seconds = now_s() - t_tiles;
    if (!opt_.checkpoint_path.empty()) {
      remove_checkpoint(opt_.checkpoint_path);
    }
    outcome.modeled_full_seconds =
        incremental_full_solve_model(n, opt_.solve_opts.device);
    outcome.modeled_repair_seconds = outcome.modeled_full_seconds;
    outcome.seconds = now_s() - t_start;
    return outcome;
  }

  // ---- Phase C: decrease repair seeds --------------------------------
  // S = stored endpoints of decreased arcs; panels are read from the
  // pristine store and patched with the phase-B rows so everything below
  // speaks exact g_mid distances.
  const double t_panel = now_s();
  std::vector<vidx_t> seeds;  // sorted unique stored ids
  {
    std::vector<std::uint8_t> in_s(static_cast<std::size_t>(n), 0);
    for (const EdgeUpdate& up : cls.decreases) {
      const vidx_t su = perm_.empty() ? up.u : perm_[up.u];
      const vidx_t sv = perm_.empty() ? up.v : perm_[up.v];
      in_s[static_cast<std::size_t>(su)] = 1;
      in_s[static_cast<std::size_t>(sv)] = 1;
    }
    for (vidx_t i = 0; i < n; ++i) {
      if (in_s[static_cast<std::size_t>(i)]) seeds.push_back(i);
    }
  }
  const std::size_t k = seeds.size();
  outcome.sources = static_cast<long long>(k);
  std::vector<int> seed_index(static_cast<std::size_t>(n), -1);
  for (std::size_t a = 0; a < k; ++a) {
    seed_index[static_cast<std::size_t>(seeds[a])] = static_cast<int>(a);
  }

  // R (k×n): rows of D_mid at the seeds.  Cc (n×k): columns of D_mid.
  std::vector<dist_t> R(k * static_cast<std::size_t>(n));
  std::vector<dist_t> Cc(static_cast<std::size_t>(n) * k);
  for (std::size_t a = 0; a < k; ++a) {
    const vidx_t s = seeds[a];
    dist_t* row = R.data() + a * static_cast<std::size_t>(n);
    const int di = dr_index[static_cast<std::size_t>(s)];
    if (di >= 0) {
      std::memcpy(row,
                  dr_rows.data() +
                      static_cast<std::size_t>(di) * static_cast<std::size_t>(n),
                  static_cast<std::size_t>(n) * sizeof(dist_t));
    } else {
      pristine.read_block(s, 0, 1, n, row, static_cast<std::size_t>(n));
    }
  }
  if (k > 0) {
    std::vector<dist_t> col(static_cast<std::size_t>(n));
    for (std::size_t a = 0; a < k; ++a) {
      pristine.read_block(0, seeds[a], n, 1, col.data(), 1);
      for (vidx_t i = 0; i < n; ++i) {
        Cc[static_cast<std::size_t>(i) * k + a] =
            col[static_cast<std::size_t>(i)];
      }
    }
    for (std::size_t di = 0; di < dr.size(); ++di) {
      const dist_t* row =
          dr_rows.data() + di * static_cast<std::size_t>(n);
      dist_t* dst = Cc.data() + static_cast<std::size_t>(dr[di]) * k;
      for (std::size_t a = 0; a < k; ++a) {
        dst[a] = row[static_cast<std::size_t>(seeds[a])];
      }
    }
  }

  // Seed closure M* — D_mid between seeds, improved by the decreased arcs,
  // transitively closed so one panel product covers arc chains.
  std::vector<dist_t> M(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    const dist_t* row = R.data() + a * static_cast<std::size_t>(n);
    for (std::size_t b = 0; b < k; ++b) {
      M[a * k + b] = row[static_cast<std::size_t>(seeds[b])];
    }
  }
  for (const EdgeUpdate& up : cls.decreases) {
    const vidx_t su = perm_.empty() ? up.u : perm_[up.u];
    const vidx_t sv = perm_.empty() ? up.v : perm_[up.v];
    const std::size_t a = static_cast<std::size_t>(
        seed_index[static_cast<std::size_t>(su)]);
    const std::size_t b = static_cast<std::size_t>(
        seed_index[static_cast<std::size_t>(sv)]);
    M[a * k + b] = std::min(M[a * k + b], up.w);
  }
  if (k > 0) {
    fw_inplace(M.data(), k, static_cast<vidx_t>(k));
  }

  // L = Cc ⊗ M* (n×k) and R' = M* ⊗ R (k×n); the rows/columns they improve
  // are the affected sets — everything else provably keeps its value.
  std::vector<dist_t> L = Cc;
  std::vector<dist_t> Rp = R;
  if (k > 0 && n > 0) {
    minplus_accum(L.data(), k, Cc.data(), k, M.data(), k, n,
                  static_cast<vidx_t>(k), static_cast<vidx_t>(k));
    minplus_accum(Rp.data(), static_cast<std::size_t>(n), M.data(), k,
                  R.data(), static_cast<std::size_t>(n),
                  static_cast<vidx_t>(k), static_cast<vidx_t>(k), n);
  }
  std::vector<std::uint8_t> ar(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> ac(static_cast<std::size_t>(n), 0);
  for (vidx_t i = 0; i < n; ++i) {
    const dist_t* li = L.data() + static_cast<std::size_t>(i) * k;
    const dist_t* ci = Cc.data() + static_cast<std::size_t>(i) * k;
    for (std::size_t a = 0; a < k; ++a) {
      if (li[a] < ci[a]) {
        ar[static_cast<std::size_t>(i)] = 1;
        break;
      }
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    const dist_t* ra = R.data() + a * static_cast<std::size_t>(n);
    const dist_t* pa = Rp.data() + a * static_cast<std::size_t>(n);
    for (vidx_t j = 0; j < n; ++j) {
      if (pa[static_cast<std::size_t>(j)] < ra[static_cast<std::size_t>(j)]) {
        ac[static_cast<std::size_t>(j)] = 1;
      }
    }
  }
  for (const auto& f : ar) outcome.affected_rows += f;
  for (const auto& f : ac) outcome.affected_cols += f;
  outcome.panel_seconds = now_s() - t_panel;

  // Dirty-tile frontier at block granularity.
  std::vector<std::uint8_t> dr_tile(static_cast<std::size_t>(nb), 0);
  std::vector<std::uint8_t> ar_tile(static_cast<std::size_t>(nb), 0);
  std::vector<std::uint8_t> ac_tile(static_cast<std::size_t>(nb), 0);
  for (vidx_t i = 0; i < n; ++i) {
    const std::size_t b = static_cast<std::size_t>(i / tile);
    if (dr_index[static_cast<std::size_t>(i)] >= 0) dr_tile[b] = 1;
    if (ar[static_cast<std::size_t>(i)]) ar_tile[b] = 1;
    if (ac[static_cast<std::size_t>(i)]) ac_tile[b] = 1;
  }

  // ---- Checkpoint the deterministic phase-B state --------------------
  std::vector<std::uint8_t> payload;
  if (!opt_.checkpoint_path.empty()) {
    payload.push_back(kModeRepair);
    const std::uint64_t count = dr.size();
    append_bytes(payload, &count, sizeof(count));
    append_bytes(payload, dr.data(), dr.size() * sizeof(vidx_t));
    append_bytes(payload, dr_rows.data(), dr_rows.size() * sizeof(dist_t));
    if (start_tile == 0) write_delta_checkpoint(0, payload);
  }

  // ---- Dirty-tile walk ------------------------------------------------
  const double t_tiles = now_s();
  std::vector<dist_t> cur(static_cast<std::size_t>(tile) * tile);
  std::vector<dist_t> orig(static_cast<std::size_t>(tile) * tile);
  long long idx = 0;
  for (vidx_t bi = 0; bi < nb; ++bi) {
    const bool row_damaged = dr_tile[static_cast<std::size_t>(bi)];
    const bool row_affected = ar_tile[static_cast<std::size_t>(bi)];
    if (!row_damaged && !row_affected) continue;
    for (vidx_t bj = 0; bj < nb; ++bj) {
      const bool relax =
          row_affected && ac_tile[static_cast<std::size_t>(bj)];
      if (!row_damaged && !relax) continue;
      ++outcome.tiles_candidate;
      if (idx < start_tile) {
        ++idx;
        ++outcome.tiles_resumed;
        continue;
      }
      const vidx_t r0 = bi * tile, c0 = bj * tile;
      const vidx_t rows = std::min(tile, n - r0);
      const vidx_t cols = std::min(tile, n - c0);
      const std::size_t elems = static_cast<std::size_t>(rows) * cols;
      read_pristine_tile(r0, c0, rows, cols, cur.data());
      std::memcpy(orig.data(), cur.data(), elems * sizeof(dist_t));
      // Patch the phase-B rows: the tile now holds exact g_mid values.
      for (vidx_t r = 0; r < rows; ++r) {
        const int di = dr_index[static_cast<std::size_t>(r0 + r)];
        if (di < 0) continue;
        std::memcpy(cur.data() + static_cast<std::size_t>(r) * cols,
                    dr_rows.data() +
                        static_cast<std::size_t>(di) *
                            static_cast<std::size_t>(n) +
                        c0,
                    static_cast<std::size_t>(cols) * sizeof(dist_t));
      }
      // Decrease relaxation: T = min(T, L[rows,:] ⊗ R[:,cols]).
      if (relax && k > 0) {
        minplus_accum(cur.data(), static_cast<std::size_t>(cols),
                      L.data() + static_cast<std::size_t>(r0) * k, k,
                      R.data() + c0, static_cast<std::size_t>(n), rows,
                      static_cast<vidx_t>(k), cols);
      }
      if (std::memcmp(cur.data(), orig.data(), elems * sizeof(dist_t)) != 0) {
        sink(bi, bj, r0, c0, rows, cols, cur.data());
        ++outcome.tiles_touched;
      }
      ++idx;
      if (!opt_.checkpoint_path.empty() &&
          idx % opt_.checkpoint_every_tiles == 0) {
        write_delta_checkpoint(idx, payload);
      }
    }
  }
  outcome.tile_seconds = now_s() - t_tiles;
  if (!opt_.checkpoint_path.empty()) {
    remove_checkpoint(opt_.checkpoint_path);
  }

  const IncrementalCost cost = estimate_incremental(
      n, g_final_.num_edges(), k, dr.size(),
      static_cast<std::size_t>(outcome.tiles_touched), tile,
      opt_.solve_opts.device);
  outcome.modeled_repair_seconds = cost.total();
  outcome.modeled_full_seconds =
      incremental_full_solve_model(n, opt_.solve_opts.device);
  outcome.seconds = now_s() - t_start;
  return outcome;
}

UpdateOutcome IncrementalEngine::apply_in_place(
    DistStore& store, std::span<const EdgeUpdate> updates) {
  return apply(store, updates,
               [&store](vidx_t, vidx_t, vidx_t row0, vidx_t col0, vidx_t rows,
                        vidx_t cols, const dist_t* data) {
                 store.write_block(row0, col0, rows, cols, data,
                                   static_cast<std::size_t>(cols));
               });
}

}  // namespace gapsp::core
