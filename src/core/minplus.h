// Dense min-plus (tropical) matrix kernels — the functional bodies of the
// simulator's regular "GPU" kernels. All matrices are row-major with an
// explicit leading dimension.
#pragma once

#include <cstddef>

#include "util/common.h"

namespace gapsp::core {

/// C = min(C, A ⊗ B) where ⊗ is min-plus product.
/// C is nr×nc (ldc), A is nr×nk (lda), B is nk×nc (ldb).
/// Dispatches to the kernel-engine variant selected by set_kernel_config /
/// the autotuner (see core/kernel_engine.h); every variant is bit-identical.
void minplus_accum(dist_t* c, std::size_t ldc, const dist_t* a,
                   std::size_t lda, const dist_t* b, std::size_t ldb,
                   vidx_t nr, vidx_t nk, vidx_t nc);

/// In-place Floyd–Warshall on an n×n matrix (intermediate vertices = all n
/// local indices). Used for the smallest diagonal sub-tiles.
void fw_inplace(dist_t* m, std::size_t ld, vidx_t n);

/// Floyd–Warshall panel update with external diagonal block: for every local
/// k in [0, nk): row-panel form  P = min(P, D[:,k] row-broadcast ...).
/// Computes P (nk×nc) = min(P, D ⊗ P) *iterated in k order*, where D (nk×nk)
/// is the already-closed diagonal block. Because D is transitively closed a
/// single min-plus accumulation is sufficient; this helper exists so panel
/// updates read naturally at call sites.
inline void fw_row_panel(dist_t* p, std::size_t ldp, const dist_t* d,
                         std::size_t ldd, vidx_t nk, vidx_t nc) {
  minplus_accum(p, ldp, d, ldd, p, ldp, nk, nk, nc);
}

/// Column-panel form: P (nr×nk) = min(P, P ⊗ D) with closed diagonal D.
inline void fw_col_panel(dist_t* p, std::size_t ldp, const dist_t* d,
                         std::size_t ldd, vidx_t nr, vidx_t nk) {
  minplus_accum(p, ldp, p, ldp, d, ldd, nr, nk, nk);
}

/// Number of scalar operations of a min-plus product (add + compare per
/// inner element) — used to build kernel profiles.
inline double minplus_ops(vidx_t nr, vidx_t nk, vidx_t nc) {
  return 2.0 * static_cast<double>(nr) * static_cast<double>(nk) *
         static_cast<double>(nc);
}

/// Approximate device-memory traffic of a tiled min-plus product with square
/// shared-memory tiles of side `tile` (each operand tile loaded once per
/// tile-step, output written once).
inline double minplus_bytes(vidx_t nr, vidx_t nk, vidx_t nc, int tile) {
  const double steps = static_cast<double>((nk + tile - 1) / tile);
  return sizeof(dist_t) *
         (steps * (static_cast<double>(nr) * tile + static_cast<double>(nc) * tile) +
          2.0 * static_cast<double>(nr) * static_cast<double>(nc));
}

}  // namespace gapsp::core
