// Serialization of solved distance matrices.
//
// Binary format "GAPSPDM1": a small header (magic, n, permutation flag)
// followed by the permutation (if any) and the row-major n×n dist_t matrix.
// Lets a solved APSP (hours of work at production scale) be saved once and
// queried forever, and lets the CLI hand results to other tools.
#pragma once

#include <memory>
#include <string>

#include "core/apsp_options.h"
#include "core/dist_store.h"

namespace gapsp::core {

/// Streams the store (and the result's permutation) to `path`.
/// Rows are written in bounded-memory chunks.
void save_distances(const DistStore& store, const ApspResult& result,
                    const std::string& path);

struct LoadedDistances {
  std::unique_ptr<DistStore> store;  ///< RAM-backed
  std::vector<vidx_t> perm;          ///< empty = identity

  vidx_t stored_id(vidx_t v) const {
    return perm.empty() ? v : perm[static_cast<std::size_t>(v)];
  }
};

/// Reads a file written by save_distances. Throws gapsp::Error on a bad
/// magic, truncated payload, or malformed permutation.
LoadedDistances load_distances(const std::string& path);

}  // namespace gapsp::core
