#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "core/compressed_store.h"

namespace gapsp::core {
namespace {

constexpr char kMagic[8] = {'G', 'A', 'P', 'S', 'P', 'C', 'K', '1'};

/// flags bit: the stored payload is a z1 frame (compressed_store.h) and
/// must be decompressed on read. Boundary dist2/dist3 blobs are distance
/// data with long kInf runs — compressing them cuts chaos-resume I/O.
constexpr std::uint32_t kPayloadCompressed = 1u << 0;

/// Fixed-size portion of the sidecar, written raw (checkpoints are consumed
/// on the machine that wrote them, like CUDA's binary dumps).
struct Header {
  char magic[8];
  std::uint32_t algorithm;
  std::uint32_t flags;
  std::uint64_t fingerprint;
  std::int64_t n;
  std::int64_t progress;
  std::int64_t aux0;
  std::int64_t aux1;
  std::uint64_t payload_bytes;  ///< bytes stored on disk (post-compression)
};
static_assert(sizeof(Header) == 64, "sidecar header layout drifted");

/// RAII stdio handle so error paths cannot leak the descriptor.
struct File {
  std::FILE* f = nullptr;
  explicit File(std::FILE* f) : f(f) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  std::FILE* release() {
    std::FILE* out = f;
    f = nullptr;
    return out;
  }
};

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t graph_fingerprint(const graph::CsrGraph& g) {
  const std::int64_t shape[2] = {g.num_vertices(), g.num_edges()};
  std::uint64_t h = fnv1a(shape, sizeof(shape));
  h = fnv1a(g.offsets().data(), g.offsets().size_bytes(), h);
  h = fnv1a(g.targets().data(), g.targets().size_bytes(), h);
  h = fnv1a(g.edge_weights().data(), g.edge_weights().size_bytes(), h);
  return h;
}

void write_checkpoint(const std::string& path, const Checkpoint& ck) {
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.algorithm = ck.algorithm;
  h.fingerprint = ck.fingerprint;
  h.n = ck.n;
  h.progress = ck.progress;
  h.aux0 = ck.aux0;
  h.aux1 = ck.aux1;
  // Compress the payload at this sink when it pays for itself; a payload
  // that random data defeats is stored raw so the sidecar never grows.
  const std::vector<std::uint8_t>* body = &ck.payload;
  std::vector<std::uint8_t> z;
  if (!ck.payload.empty()) {
    z = z1_compress(ck.payload.data(), ck.payload.size());
    if (z.size() < ck.payload.size()) {
      body = &z;
      h.flags |= kPayloadCompressed;
    }
  }
  h.payload_bytes = body->size();
  // Content checksum over header+payload so a torn write is detected on
  // read instead of resuming from garbage progress.
  std::uint64_t sum = fnv1a(&h, sizeof(h));
  if (!body->empty()) {
    sum = fnv1a(body->data(), body->size(), sum);
  }

  // Write to a sibling tmp file, then rename: the sidecar at `path` is
  // either the previous complete checkpoint or the new complete one, never
  // a partial write (a crash mid-checkpoint must not poison resume).
  const std::string tmp = path + ".tmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file.f == nullptr) {
    throw IoError("checkpoint: cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(&h, sizeof(h), 1, file.f) == 1;
  if (ok && !body->empty()) {
    ok = std::fwrite(body->data(), 1, body->size(), file.f) == body->size();
  }
  ok = ok && std::fwrite(&sum, sizeof(sum), 1, file.f) == 1;
  ok = ok && std::fflush(file.f) == 0;
  ok = std::fclose(file.release()) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw IoError("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("checkpoint: cannot rename " + tmp + " to " + path);
  }
}

bool read_checkpoint(const std::string& path, Checkpoint* ck) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) return false;  // no sidecar: start fresh
  Header h{};
  if (std::fread(&h, sizeof(h), 1, file.f) != 1) return false;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return false;
  // Bound the payload by the actual file size before allocating.
  if (std::fseek(file.f, 0, SEEK_END) != 0) return false;
  const long size = std::ftell(file.f);
  if (size < 0 ||
      static_cast<unsigned long>(size) !=
          sizeof(Header) + h.payload_bytes + sizeof(std::uint64_t)) {
    return false;
  }
  if (std::fseek(file.f, sizeof(Header), SEEK_SET) != 0) return false;
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(h.payload_bytes));
  if (!payload.empty() &&
      std::fread(payload.data(), 1, payload.size(), file.f) !=
          payload.size()) {
    return false;
  }
  std::uint64_t stored_sum = 0;
  if (std::fread(&stored_sum, sizeof(stored_sum), 1, file.f) != 1) {
    return false;
  }
  std::uint64_t sum = fnv1a(&h, sizeof(h));
  if (!payload.empty()) sum = fnv1a(payload.data(), payload.size(), sum);
  if (sum != stored_sum) return false;  // torn/corrupt sidecar
  if ((h.flags & ~kPayloadCompressed) != 0) return false;  // unknown flags
  if ((h.flags & kPayloadCompressed) != 0) {
    try {
      std::vector<std::uint8_t> raw(static_cast<std::size_t>(
          z1_raw_size(payload.data(), payload.size())));
      z1_decompress(payload.data(), payload.size(), raw.data(), raw.size());
      payload = std::move(raw);
    } catch (const IoError&) {
      return false;  // corrupt frame: start fresh, like any other damage
    }
  }

  ck->algorithm = h.algorithm;
  ck->fingerprint = h.fingerprint;
  ck->n = h.n;
  ck->progress = h.progress;
  ck->aux0 = h.aux0;
  ck->aux1 = h.aux1;
  ck->payload = std::move(payload);
  return true;
}

void remove_checkpoint(const std::string& path) {
  std::remove(path.c_str());  // ENOENT is fine
}

}  // namespace gapsp::core
