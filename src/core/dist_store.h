// Host-side storage for the n×n output distance matrix — the object that is
// orders of magnitude larger than the input and drives the whole paper.
//
// Two backends: RAM (output fits in host memory, Table III graphs) and a
// file-backed store (output exceeds host memory, Table IV / Fig. 5 graphs).
// All out-of-core algorithms stream block writes into this interface.
#pragma once

#include <memory>
#include <string>

#include "util/common.h"

namespace gapsp::core {

class DistStore {
 public:
  virtual ~DistStore() = default;

  vidx_t n() const { return n_; }

  /// Writes a rows×cols block whose top-left corner is (row0, col0) from
  /// `src` with leading dimension `src_ld` (elements, not bytes).
  virtual void write_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                           const dist_t* src, std::size_t src_ld) = 0;

  /// Reads a block into `dst` with leading dimension `dst_ld`.
  virtual void read_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols,
                          dist_t* dst, std::size_t dst_ld) const = 0;

  /// Single-element convenience (slow path, for queries and tests).
  dist_t at(vidx_t u, vidx_t v) const;

  /// Native tile side of a tiled backend (the GAPSPZ1 compressed store), so
  /// caches can align their grid to the stored tiling. 0 = untiled.
  virtual vidx_t tile_size() const { return 0; }

  /// True when the backend can prove, without reading data, that every
  /// element of the block is kInf (the compressed store's directory marks
  /// all-kInf tiles). False only means "unknown" — callers still scan.
  virtual bool block_known_inf(vidx_t row0, vidx_t col0, vidx_t rows,
                               vidx_t cols) const {
    check_block(row0, col0, rows, cols);
    return false;
  }

  /// Pushes buffered writes down to the OS (no-op for unbuffered backends).
  /// This is the durability boundary for checkpointed writers: a checkpoint
  /// claiming a tile complete while its bytes still sit in a userspace stdio
  /// buffer turns a SIGKILL into silent corruption on resume — flush the
  /// store first.
  virtual void flush() {}

 protected:
  explicit DistStore(vidx_t n) : n_(n) {
    GAPSP_CHECK(n >= 0, "negative matrix dimension");
  }
  void check_block(vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols) const;

 private:
  vidx_t n_;
};

/// In-memory store: a single row-major n×n buffer.
std::unique_ptr<DistStore> make_ram_store(vidx_t n);

/// File-backed store at `path` (created/truncated, n²·sizeof(dist_t) bytes,
/// row-major). Used when the output exceeds the host RAM budget. By default
/// the file is removed when the store is destroyed; pass keep_file=true to
/// leave the raw matrix on disk.
std::unique_ptr<DistStore> make_file_store(vidx_t n, const std::string& path,
                                           bool keep_file = false);

/// Opens an existing kept store file read-only for serving queries (the
/// query service's entry point; see src/service/). The dimension is inferred
/// from the file size, which must be exactly n²·sizeof(dist_t) for integer
/// n. Throws IoError when the file is missing or not a square matrix;
/// write_block on the returned store throws IoError. The file is never
/// removed on destruction.
std::unique_ptr<DistStore> open_file_store(const std::string& path);

// open_store(path) — the serving entry point that auto-detects a raw kept
// file vs a GAPSPZ1 block-compressed store — lives in compressed_store.h.

}  // namespace gapsp::core
