#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "core/apsp_common.h"  // weight_block
#include "core/checkpoint.h"   // fnv1a
#include "core/dist_store.h"
#include "core/kernel_engine.h"
#include "core/z1_codec.h"
#include "core/minplus.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace gapsp::core {

double compressed_link_bandwidth(const sim::DeviceSpec& spec,
                                 double wire_ratio) {
  const double decode_rate = spec.decode_gbps * 1e9;
  if (wire_ratio <= 1.0 || decode_rate <= 0.0) return spec.link_bandwidth;
  // Per raw byte: 1/R of it crosses the link, all of it passes the decode
  // kernel — the effective rate is the harmonic combination.
  return 1.0 /
         (1.0 / (wire_ratio * spec.link_bandwidth) + 1.0 / decode_rate);
}

double estimate_transfer_ratio(const graph::CsrGraph& g,
                               const ApspOptions& opts) {
  const sim::DeviceSpec& spec = opts.device;
  const double decode_rate = spec.decode_gbps * 1e9;
  switch (opts.transfer_compression) {
    case TransferCompression::kOff:
      return 1.0;
    case TransferCompression::kOn:
      if (decode_rate <= 0.0) return 1.0;
      break;
    case TransferCompression::kAuto:
      if (decode_rate <= spec.link_bandwidth) return 1.0;
      break;
  }
  // Probe the same tiles the drivers stage: weight blocks, compressed under
  // the codec's own per-tile fallback threshold. A handful of sampled
  // block-rows is representative because the z1 ratio is driven by the kInf
  // density, which is uniform across an adjacency-structured matrix.
  const double max_wire_frac =
      std::max(0.0, 1.0 - spec.link_bandwidth / decode_rate);
  const vidx_t n = g.num_vertices();
  const vidx_t rows = std::min<vidx_t>(n, 64);
  const int blocks = n > rows ? 4 : 1;
  std::vector<dist_t> tile(static_cast<std::size_t>(rows) * n);
  std::vector<std::uint8_t> frame;
  double raw_total = 0.0, wire_total = 0.0;
  for (int i = 0; i < blocks; ++i) {
    const vidx_t row0 = static_cast<vidx_t>(
        static_cast<std::int64_t>(i) * (n - rows) / std::max(1, blocks - 1));
    weight_block(g, row0, 0, rows, n, tile.data(),
                 static_cast<std::size_t>(n));
    const std::size_t raw = tile.size() * sizeof(dist_t);
    z1_compress(tile.data(), raw, frame);
    raw_total += static_cast<double>(raw);
    wire_total += (static_cast<double>(frame.size()) <
                   max_wire_frac * static_cast<double>(raw))
                      ? static_cast<double>(frame.size())
                      : static_cast<double>(raw);
  }
  return wire_total > 0.0 ? raw_total / wire_total : 1.0;
}

double fw_transfer_model(vidx_t n, const sim::DeviceSpec& spec, bool overlap,
                         double out_bytes_per_element, double wire_ratio) {
  const vidx_t b = fw_block_size(spec, n, fw_resident_blocks(overlap));
  const double nd = std::ceil(static_cast<double>(n) / b);
  // Working tiles (3b²) bounce over the device link at the raw element
  // size; only the n² output stream lands in the (possibly compressed)
  // store sink.
  const double bytes =
      nd * (3.0 * sizeof(dist_t) * static_cast<double>(b) * b +
            out_bytes_per_element * static_cast<double>(n) * n);
  return bytes / compressed_link_bandwidth(spec, wire_ratio);
}

double johnson_transfer_model(vidx_t n, const sim::DeviceSpec& spec,
                              double out_bytes_per_element,
                              double wire_ratio) {
  return out_bytes_per_element * static_cast<double>(n) * n /
         compressed_link_bandwidth(spec, wire_ratio);
}

double boundary_transfer_model(const BoundaryPlan& plan, vidx_t n,
                               const sim::DeviceSpec& spec,
                               double out_bytes_per_element,
                               double wire_ratio) {
  // Output volume is n² either way; batching turns it into ~k/N_row large
  // transfers. Model the transfer count from the staging capacity.
  const double total_bytes =
      out_bytes_per_element * static_cast<double>(n) * n;
  double transfers = static_cast<double>(plan.k) * plan.k;  // naive fallback
  if (plan.staging_rows > 0) {
    transfers = std::ceil(static_cast<double>(n) / plan.staging_rows);
  }
  return transfers * spec.transfer_latency_s +
         total_bytes / compressed_link_bandwidth(spec, wire_ratio);
}

double boundary_nop(vidx_t n, int k, double avg_boundary) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double b = avg_boundary;
  return dn * dn * dn / (dk * dk) + std::pow(dk * b, 3.0) +
         dn * dk * b * b + dn * dn * b;
}

int boundary_bucket(vidx_t n, vidx_t nb, int num_buckets) {
  const double ideal = std::pow(static_cast<double>(n), 0.75);
  const double ratio = std::max(1.0, static_cast<double>(nb) / ideal);
  const int bucket = static_cast<int>(std::floor(std::log2(ratio)));
  return std::clamp(bucket, 0, num_buckets - 1);
}

namespace {

constexpr int kNumBuckets = 6;

Calibration run_calibration(const ApspOptions& base) {
  Calibration cal;
  ApspOptions opts = base;
  opts.algorithm = Algorithm::kAuto;
  // Internal probe runs: keep them out of the user's timeline (they would
  // dominate the event count and skew the overlap summary).
  opts.trace = nullptr;

  // --- FW reference runs: random graphs, the FW cost only depends on n.
  // Two sizes give the power-law fit (paper: single point, exponent 3 —
  // valid asymptotically; at scaled sizes the measured exponent is lower).
  {
    const vidx_t na = 384, nb = 768;
    auto run_fw = [&](vidx_t n) {
      auto g = graph::make_erdos_renyi(n, 4 * n, 7001);
      auto store = make_ram_store(g.num_vertices());
      return ooc_floyd_warshall(g, opts, *store).metrics.kernel_seconds;
    };
    const double ta = run_fw(na);
    const double tb = run_fw(nb);
    cal.fw_n0 = nb;
    cal.fw_t0 = tb;
    cal.fw_exponent = std::clamp(
        std::log(tb / ta) / std::log(static_cast<double>(nb) / na), 1.0, 3.0);
  }

  // --- Boundary reference runs on small-separator (road) graphs, again a
  // two-point power-law fit (paper: single point, exponent 3/2) ---
  double fallback_c_unit = 0.0;
  auto run_bnd = [&](vidx_t side, double* c_unit_out) {
    auto g = graph::make_road(side, side, 7002);
    auto store = make_ram_store(g.num_vertices());
    const BoundaryPlan plan = plan_boundary(g, opts);
    const ApspResult r = ooc_boundary(g, opts, plan, *store);
    if (c_unit_out != nullptr) {
      const double b =
          static_cast<double>(plan.nb) / static_cast<double>(plan.k);
      *c_unit_out = r.metrics.kernel_seconds /
                    boundary_nop(g.num_vertices(), plan.k, b);
    }
    return r.metrics.kernel_seconds;
  };
  // Try successively smaller reference pairs until one fits the device; a
  // device too small for all of them leaves bnd_t0 = 0 and the estimator
  // reports boundary infeasible.
  cal.bnd_n0 = 900;
  cal.bnd_t0 = 0.0;
  for (const auto& [small_side, big_side] :
       {std::pair<vidx_t, vidx_t>{24, 36}, {18, 27}, {13, 19}}) {
    try {
      const double ta = run_bnd(small_side, nullptr);
      const double tb = run_bnd(big_side, &fallback_c_unit);
      cal.bnd_n0 = big_side * big_side;
      cal.bnd_t0 = tb;
      cal.bnd_exponent = std::clamp(
          std::log(tb / ta) /
              std::log(static_cast<double>(big_side) * big_side /
                       (static_cast<double>(small_side) * small_side)),
          0.5, 3.0);
      break;
    } catch (const Error&) {
      continue;
    }
  }

  // --- c_unit buckets: meshes with increasing long-range rewiring give
  // increasing boundary counts; record time-per-operation per bucket ---
  cal.c_unit.assign(kNumBuckets, 0.0);
  std::vector<int> samples(kNumBuckets, 0);
  const double rewires[] = {0.0, 0.02, 0.05, 0.10, 0.20, 0.35};
  for (double rw : rewires) {
    auto g = graph::make_mesh(700, 12, 7003, rw);
    BoundaryPlan plan;
    try {
      plan = plan_boundary(g, opts);
    } catch (const Error&) {
      continue;  // this training point does not fit the device — skip
    }
    auto store = make_ram_store(g.num_vertices());
    ApspResult r;
    try {
      r = ooc_boundary(g, opts, plan, *store);
    } catch (const Error&) {
      continue;
    }
    const double b =
        static_cast<double>(plan.nb) / static_cast<double>(plan.k);
    const double nop = boundary_nop(g.num_vertices(), plan.k, b);
    const int bucket = boundary_bucket(g.num_vertices(), plan.nb, kNumBuckets);
    cal.c_unit[bucket] += r.metrics.kernel_seconds / nop;
    ++samples[bucket];
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    if (samples[i] > 0) cal.c_unit[i] /= samples[i];
  }
  // Fill untrained buckets from the nearest trained one; if no training
  // point fit the device, fall back to the per-op cost of the road
  // reference run.
  for (int i = 0; i < kNumBuckets; ++i) {
    if (cal.c_unit[i] != 0.0) continue;
    for (int d = 1; d < kNumBuckets; ++d) {
      const int lo = i - d, hi = i + d;
      if (lo >= 0 && cal.c_unit[lo] != 0.0) {
        cal.c_unit[i] = cal.c_unit[lo];
        break;
      }
      if (hi < kNumBuckets && cal.c_unit[hi] != 0.0) {
        cal.c_unit[i] = cal.c_unit[hi];
        break;
      }
    }
    if (cal.c_unit[i] == 0.0) cal.c_unit[i] = fallback_c_unit;
  }
  return cal;
}

}  // namespace

namespace {

std::mutex& calibration_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Calibration>& calibration_table() {
  static std::map<std::string, Calibration> cache;
  return cache;
}

long long g_calibration_runs = 0;  // guarded by calibration_mutex()

constexpr char kCalMagic[8] = {'G', 'A', 'P', 'S', 'C', 'A', 'L', '1'};

}  // namespace

std::string calibration_cache_key(const ApspOptions& opts) {
  // The probe runs execute real (simulated) solves, so every option that
  // changes their cost must be part of the key — keying on the device alone
  // would let two configs on the same device silently share stale
  // calibrations (e.g. overlap on/off changes block sizes and hidden
  // transfer time, the kernel variant changes measured kernel seconds).
  return opts.device.name + "/" + std::to_string(opts.device.memory_bytes) +
         "/ov" + std::to_string(opts.overlap_transfers ? 1 : 0) + "/bt" +
         std::to_string(opts.batch_transfers ? 1 : 0) + "/kv" +
         std::to_string(static_cast<int>(opts.kernel_variant)) + "/qf" +
         std::to_string(opts.johnson_queue_factor) + "/ft" +
         std::to_string(opts.fw_tile) + "/tc" +
         std::to_string(static_cast<int>(opts.transfer_compression));
}

const Calibration& calibrate(const ApspOptions& opts) {
  const std::string key = calibration_cache_key(opts);
  std::lock_guard<std::mutex> lk(calibration_mutex());
  auto& cache = calibration_table();
  auto it = cache.find(key);
  if (it == cache.end()) {
    ++g_calibration_runs;
    it = cache.emplace(key, run_calibration(opts)).first;
  }
  return it->second;
}

bool save_calibration(const ApspOptions& opts, const std::string& path) {
  const std::string key = calibration_cache_key(opts);
  Calibration cal;
  {
    std::lock_guard<std::mutex> lk(calibration_mutex());
    const auto it = calibration_table().find(key);
    if (it == calibration_table().end()) return false;
    cal = it->second;
  }
  // Same-machine binary sidecar, checksummed like GAPSPCK1: the table is a
  // cache, so any doubt on read just means re-running the probes.
  std::vector<std::uint8_t> buf;
  const auto put = [&buf](const void* p, std::size_t bytes) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + bytes);
  };
  put(kCalMagic, sizeof(kCalMagic));
  const std::uint64_t key_len = key.size();
  put(&key_len, sizeof(key_len));
  put(key.data(), key.size());
  put(&cal.fw_t0, sizeof(cal.fw_t0));
  const std::int64_t fw_n0 = cal.fw_n0;
  put(&fw_n0, sizeof(fw_n0));
  put(&cal.fw_exponent, sizeof(cal.fw_exponent));
  put(&cal.bnd_t0, sizeof(cal.bnd_t0));
  const std::int64_t bnd_n0 = cal.bnd_n0;
  put(&bnd_n0, sizeof(bnd_n0));
  put(&cal.bnd_exponent, sizeof(cal.bnd_exponent));
  const std::uint64_t buckets = cal.c_unit.size();
  put(&buckets, sizeof(buckets));
  put(cal.c_unit.data(), cal.c_unit.size() * sizeof(double));
  const std::uint64_t sum = fnv1a(buf.data(), buf.size());
  put(&sum, sizeof(sum));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError("calibration: cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  ok = ok && std::fflush(f) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("calibration: short write to " + tmp);
  }
  return true;
}

bool load_calibration(const ApspOptions& opts, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;  // no sidecar: calibrate() will probe
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  std::fclose(f);

  std::size_t pos = 0;
  const auto take = [&](void* p, std::size_t bytes) {
    if (buf.size() - pos < bytes) return false;
    std::memcpy(p, buf.data() + pos, bytes);
    pos += bytes;
    return true;
  };
  char magic[8];
  if (buf.size() < sizeof(std::uint64_t) ||
      !take(magic, sizeof(magic)) ||
      std::memcmp(magic, kCalMagic, sizeof(kCalMagic)) != 0) {
    return false;
  }
  const std::size_t body = buf.size() - sizeof(std::uint64_t);
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, buf.data() + body, sizeof(stored_sum));
  if (fnv1a(buf.data(), body) != stored_sum) return false;

  std::uint64_t key_len = 0;
  if (!take(&key_len, sizeof(key_len)) || key_len > body - pos) return false;
  std::string key(reinterpret_cast<const char*>(buf.data() + pos),
                  static_cast<std::size_t>(key_len));
  pos += static_cast<std::size_t>(key_len);
  if (key != calibration_cache_key(opts)) return false;  // other config

  Calibration cal;
  std::int64_t fw_n0 = 0, bnd_n0 = 0;
  std::uint64_t buckets = 0;
  if (!take(&cal.fw_t0, sizeof(cal.fw_t0)) ||
      !take(&fw_n0, sizeof(fw_n0)) ||
      !take(&cal.fw_exponent, sizeof(cal.fw_exponent)) ||
      !take(&cal.bnd_t0, sizeof(cal.bnd_t0)) ||
      !take(&bnd_n0, sizeof(bnd_n0)) ||
      !take(&cal.bnd_exponent, sizeof(cal.bnd_exponent)) ||
      !take(&buckets, sizeof(buckets)) ||
      buckets > (body - pos) / sizeof(double)) {
    return false;
  }
  cal.fw_n0 = static_cast<vidx_t>(fw_n0);
  cal.bnd_n0 = static_cast<vidx_t>(bnd_n0);
  cal.c_unit.resize(static_cast<std::size_t>(buckets));
  if (!take(cal.c_unit.data(), cal.c_unit.size() * sizeof(double)) ||
      pos != body) {
    return false;
  }

  std::lock_guard<std::mutex> lk(calibration_mutex());
  calibration_table()[key] = std::move(cal);
  return true;
}

void clear_calibration_cache() {
  std::lock_guard<std::mutex> lk(calibration_mutex());
  calibration_table().clear();
}

long long calibration_runs() {
  std::lock_guard<std::mutex> lk(calibration_mutex());
  return g_calibration_runs;
}

namespace {

/// Fills the variant-aware host-side fields of an estimate: `ops` is the
/// scalar min-plus op count of the algorithm (minplus_ops convention, add +
/// compare = 2), priced at the autotuner's measured per-element constant for
/// the variant the run would resolve to. Host wall-clock only — total() and
/// the selector's ordering stay on the variant-invariant simulated timeline.
void apply_kernel_variant(CostBreakdown& cost, const ApspOptions& opts,
                          double ops) {
  KernelVariant v = opts.kernel_variant;
  const KernelTuning tuning = kernel_tuning();
  if (v == KernelVariant::kAuto) v = tuning.winner;
  cost.kernel_rel_speed = kernel_variant_rel_speed(v);
  const int idx = kernel_variant_index(v);
  if (idx >= 0) cost.host_minplus_s = ops * tuning.seconds_per_op[idx];
}

}  // namespace

CostBreakdown estimate_fw(const graph::CsrGraph& g, const ApspOptions& opts) {
  const Calibration& cal = calibrate(opts);
  const double scale =
      static_cast<double>(g.num_vertices()) / static_cast<double>(cal.fw_n0);
  CostBreakdown cost;
  cost.compute_s = cal.fw_t0 * std::pow(scale, cal.fw_exponent);
  cost.transfer_s =
      fw_transfer_model(g.num_vertices(), opts.device, opts.overlap_transfers,
                        opts.store_bytes_per_element,
                        estimate_transfer_ratio(g, opts));
  cost.overlapped = opts.overlap_transfers;
  // FW relaxes every (i, k, j) triple once: n³ inner elements.
  const vidx_t n = g.num_vertices();
  apply_kernel_variant(cost, opts, minplus_ops(n, n, n));
  return cost;
}

std::int64_t johnson_num_batches(vidx_t n, int bat) {
  GAPSP_CHECK(bat > 0, "batch size must be positive");
  // 64-bit on purpose: n + bat - 1 overflows a 32-bit vidx_t for n near the
  // type's maximum with a small batch size.
  return (static_cast<std::int64_t>(n) + bat - 1) / bat;
}

CostBreakdown estimate_johnson(const graph::CsrGraph& g,
                               const ApspOptions& opts, int sample_batches) {
  int bat = 0;
  try {
    bat = johnson_batch_size(opts.device, g, opts.johnson_queue_factor,
                             opts.overlap_transfers ? 2 : 1);
  } catch (const Error&) {
    // Not even one SSSP instance fits the device: infeasible, like
    // estimate_boundary when no k fits — never an exception the selector
    // has to survive.
    CostBreakdown cost;
    cost.feasible = false;
    cost.compute_s = cost.transfer_s = std::numeric_limits<double>::infinity();
    return cost;
  }
  const std::int64_t nb = johnson_num_batches(g.num_vertices(), bat);
  // Randomly choose up to `sample_batches` distinct batches (paper: k = 5).
  Rng rng(opts.seed ^ 0x5eedULL);
  std::vector<int> chosen;
  if (nb <= sample_batches) {
    for (int i = 0; i < static_cast<int>(nb); ++i) chosen.push_back(i);
  } else {
    while (static_cast<int>(chosen.size()) < sample_batches) {
      const int c = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(nb)));
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
        chosen.push_back(c);
      }
    }
  }
  // Sampling is an internal probe — keep it out of the user's timeline.
  ApspOptions sample_opts = opts;
  sample_opts.trace = nullptr;
  const JohnsonSample sample = johnson_sample_batches(g, sample_opts, chosen);
  CostBreakdown cost;
  cost.compute_s = sample.kernel_seconds * static_cast<double>(nb) /
                   static_cast<double>(std::max(1, sample.sampled));
  cost.transfer_s = johnson_transfer_model(g.num_vertices(), opts.device,
                                           opts.store_bytes_per_element,
                                           estimate_transfer_ratio(g, opts));
  cost.overlapped = opts.overlap_transfers;
  // Johnson is SSSP-bound, not min-plus-bound: no dense-kernel host term,
  // but report the resolved variant's relative speed for symmetry.
  apply_kernel_variant(cost, opts, 0.0);
  return cost;
}

CostBreakdown estimate_boundary(const graph::CsrGraph& g,
                                const ApspOptions& opts) {
  CostBreakdown cost;
  BoundaryPlan plan;
  try {
    plan = plan_boundary(g, opts);
  } catch (const Error&) {
    cost.feasible = false;
    cost.compute_s = cost.transfer_s = std::numeric_limits<double>::infinity();
    return cost;
  }
  const Calibration& cal = calibrate(opts);
  const vidx_t n = g.num_vertices();
  const double ideal = std::pow(static_cast<double>(n), 0.75);
  // Small-separator test on the plan's own partition (k = √n/4): the road
  // family sits near 1.2·n^(3/4) boundary vertices, the mesh family at 4+.
  const bool small_sep =
      static_cast<double>(plan.nb) < 2.5 * ideal && cal.bnd_t0 > 0.0;
  if (small_sep) {
    const double scale =
        static_cast<double>(n) / static_cast<double>(cal.bnd_n0);
    cost.compute_s = cal.bnd_t0 * std::pow(scale, cal.bnd_exponent);
  } else {
    const double b =
        static_cast<double>(plan.nb) / static_cast<double>(plan.k);
    const int bucket = boundary_bucket(n, plan.nb, kNumBuckets);
    if (cal.c_unit[bucket] <= 0.0) {
      cost.feasible = false;
      cost.compute_s = cost.transfer_s =
          std::numeric_limits<double>::infinity();
      return cost;
    }
    cost.compute_s = boundary_nop(n, plan.k, b) * cal.c_unit[bucket];
  }
  cost.transfer_s = boundary_transfer_model(plan, n, opts.device,
                                            opts.store_bytes_per_element,
                                            estimate_transfer_ratio(g, opts));
  // Overlap only helps when the batched D2H path is actually in use.
  cost.overlapped = opts.overlap_transfers && opts.batch_transfers &&
                    plan.staging_rows > 0;
  // boundary_nop counts inner relaxations; ×2 converts to the minplus_ops
  // add+compare convention the tuning table is priced in.
  const double b = static_cast<double>(plan.nb) / static_cast<double>(plan.k);
  apply_kernel_variant(cost, opts, 2.0 * boundary_nop(n, plan.k, b));
  return cost;
}

IncrementalCost estimate_incremental(vidx_t n, eidx_t m, std::size_t sources,
                                     std::size_t damaged_rows,
                                     std::size_t tiles_touched, vidx_t tile,
                                     const sim::DeviceSpec& spec,
                                     double wire_ratio) {
  IncrementalCost cost;
  if (n <= 0 || spec.compute_ops_per_s <= 0.0) return cost;
  const double dn = static_cast<double>(n);
  const double k = static_cast<double>(sources);
  const double dr = static_cast<double>(damaged_rows);
  const double tiles = static_cast<double>(tiles_touched);
  const double tb = static_cast<double>(tile) * static_cast<double>(tile);

  // Damaged rows re-run SSSP: ~ (m + n·log₂n) relaxations each, charged
  // like a Johnson mini-batch at peak scalar throughput.
  const double log_n = dn > 1.0 ? std::log2(dn) : 1.0;
  cost.sssp_s =
      dr * (static_cast<double>(m) + dn * log_n) / spec.compute_ops_per_s;
  // Seed closure (k³), the two panel products (2·n·k²), and the per-tile
  // relaxations (tile²·k each), all in minplus_ops add+compare convention.
  cost.closure_s = 2.0 * k * k * k / spec.compute_ops_per_s;
  cost.panel_s = 2.0 * 2.0 * dn * k * k / spec.compute_ops_per_s;
  cost.tile_s = tiles * 2.0 * tb * k / spec.compute_ops_per_s;

  // Wire traffic: seed row+column panels and damaged rows move once, every
  // touched tile moves twice (read + write-back), all at the effective
  // (possibly compressed) link rate plus per-transfer latency.
  const double bytes = sizeof(dist_t) *
                       (2.0 * k * dn + dr * dn + 2.0 * tiles * tb);
  const double link = compressed_link_bandwidth(spec, wire_ratio);
  cost.transfer_s =
      bytes / link +
      (2.0 * k + dr + 2.0 * tiles) * spec.transfer_latency_s;
  return cost;
}

double incremental_full_solve_model(vidx_t n, const sim::DeviceSpec& spec,
                                    double wire_ratio) {
  if (n <= 0 || spec.compute_ops_per_s <= 0.0) return 0.0;
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn / spec.compute_ops_per_s +
         fw_transfer_model(n, spec, /*overlap=*/false, sizeof(dist_t),
                           wire_ratio);
}

}  // namespace gapsp::core
