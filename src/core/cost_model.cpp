#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "core/dist_store.h"
#include "core/ooc_fw.h"
#include "core/ooc_johnson.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace gapsp::core {

double fw_transfer_model(vidx_t n, const sim::DeviceSpec& spec, bool overlap) {
  const vidx_t b = fw_block_size(spec, n, fw_resident_blocks(overlap));
  const double nd = std::ceil(static_cast<double>(n) / b);
  const double bytes =
      nd * sizeof(dist_t) *
      (3.0 * static_cast<double>(b) * b + static_cast<double>(n) * n);
  return bytes / spec.link_bandwidth;
}

double johnson_transfer_model(vidx_t n, const sim::DeviceSpec& spec) {
  return sizeof(dist_t) * static_cast<double>(n) * n / spec.link_bandwidth;
}

double boundary_transfer_model(const BoundaryPlan& plan, vidx_t n,
                               const sim::DeviceSpec& spec) {
  // Output volume is n² either way; batching turns it into ~k/N_row large
  // transfers. Model the transfer count from the staging capacity.
  const double total_bytes = sizeof(dist_t) * static_cast<double>(n) * n;
  double transfers = static_cast<double>(plan.k) * plan.k;  // naive fallback
  if (plan.staging_rows > 0) {
    transfers = std::ceil(static_cast<double>(n) / plan.staging_rows);
  }
  return transfers * spec.transfer_latency_s +
         total_bytes / spec.link_bandwidth;
}

double boundary_nop(vidx_t n, int k, double avg_boundary) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double b = avg_boundary;
  return dn * dn * dn / (dk * dk) + std::pow(dk * b, 3.0) +
         dn * dk * b * b + dn * dn * b;
}

int boundary_bucket(vidx_t n, vidx_t nb, int num_buckets) {
  const double ideal = std::pow(static_cast<double>(n), 0.75);
  const double ratio = std::max(1.0, static_cast<double>(nb) / ideal);
  const int bucket = static_cast<int>(std::floor(std::log2(ratio)));
  return std::clamp(bucket, 0, num_buckets - 1);
}

namespace {

constexpr int kNumBuckets = 6;

Calibration run_calibration(const ApspOptions& base) {
  Calibration cal;
  ApspOptions opts = base;
  opts.algorithm = Algorithm::kAuto;
  // Internal probe runs: keep them out of the user's timeline (they would
  // dominate the event count and skew the overlap summary).
  opts.trace = nullptr;

  // --- FW reference runs: random graphs, the FW cost only depends on n.
  // Two sizes give the power-law fit (paper: single point, exponent 3 —
  // valid asymptotically; at scaled sizes the measured exponent is lower).
  {
    const vidx_t na = 384, nb = 768;
    auto run_fw = [&](vidx_t n) {
      auto g = graph::make_erdos_renyi(n, 4 * n, 7001);
      auto store = make_ram_store(g.num_vertices());
      return ooc_floyd_warshall(g, opts, *store).metrics.kernel_seconds;
    };
    const double ta = run_fw(na);
    const double tb = run_fw(nb);
    cal.fw_n0 = nb;
    cal.fw_t0 = tb;
    cal.fw_exponent = std::clamp(
        std::log(tb / ta) / std::log(static_cast<double>(nb) / na), 1.0, 3.0);
  }

  // --- Boundary reference runs on small-separator (road) graphs, again a
  // two-point power-law fit (paper: single point, exponent 3/2) ---
  double fallback_c_unit = 0.0;
  auto run_bnd = [&](vidx_t side, double* c_unit_out) {
    auto g = graph::make_road(side, side, 7002);
    auto store = make_ram_store(g.num_vertices());
    const BoundaryPlan plan = plan_boundary(g, opts);
    const ApspResult r = ooc_boundary(g, opts, plan, *store);
    if (c_unit_out != nullptr) {
      const double b =
          static_cast<double>(plan.nb) / static_cast<double>(plan.k);
      *c_unit_out = r.metrics.kernel_seconds /
                    boundary_nop(g.num_vertices(), plan.k, b);
    }
    return r.metrics.kernel_seconds;
  };
  // Try successively smaller reference pairs until one fits the device; a
  // device too small for all of them leaves bnd_t0 = 0 and the estimator
  // reports boundary infeasible.
  cal.bnd_n0 = 900;
  cal.bnd_t0 = 0.0;
  for (const auto& [small_side, big_side] :
       {std::pair<vidx_t, vidx_t>{24, 36}, {18, 27}, {13, 19}}) {
    try {
      const double ta = run_bnd(small_side, nullptr);
      const double tb = run_bnd(big_side, &fallback_c_unit);
      cal.bnd_n0 = big_side * big_side;
      cal.bnd_t0 = tb;
      cal.bnd_exponent = std::clamp(
          std::log(tb / ta) /
              std::log(static_cast<double>(big_side) * big_side /
                       (static_cast<double>(small_side) * small_side)),
          0.5, 3.0);
      break;
    } catch (const Error&) {
      continue;
    }
  }

  // --- c_unit buckets: meshes with increasing long-range rewiring give
  // increasing boundary counts; record time-per-operation per bucket ---
  cal.c_unit.assign(kNumBuckets, 0.0);
  std::vector<int> samples(kNumBuckets, 0);
  const double rewires[] = {0.0, 0.02, 0.05, 0.10, 0.20, 0.35};
  for (double rw : rewires) {
    auto g = graph::make_mesh(700, 12, 7003, rw);
    BoundaryPlan plan;
    try {
      plan = plan_boundary(g, opts);
    } catch (const Error&) {
      continue;  // this training point does not fit the device — skip
    }
    auto store = make_ram_store(g.num_vertices());
    ApspResult r;
    try {
      r = ooc_boundary(g, opts, plan, *store);
    } catch (const Error&) {
      continue;
    }
    const double b =
        static_cast<double>(plan.nb) / static_cast<double>(plan.k);
    const double nop = boundary_nop(g.num_vertices(), plan.k, b);
    const int bucket = boundary_bucket(g.num_vertices(), plan.nb, kNumBuckets);
    cal.c_unit[bucket] += r.metrics.kernel_seconds / nop;
    ++samples[bucket];
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    if (samples[i] > 0) cal.c_unit[i] /= samples[i];
  }
  // Fill untrained buckets from the nearest trained one; if no training
  // point fit the device, fall back to the per-op cost of the road
  // reference run.
  for (int i = 0; i < kNumBuckets; ++i) {
    if (cal.c_unit[i] != 0.0) continue;
    for (int d = 1; d < kNumBuckets; ++d) {
      const int lo = i - d, hi = i + d;
      if (lo >= 0 && cal.c_unit[lo] != 0.0) {
        cal.c_unit[i] = cal.c_unit[lo];
        break;
      }
      if (hi < kNumBuckets && cal.c_unit[hi] != 0.0) {
        cal.c_unit[i] = cal.c_unit[hi];
        break;
      }
    }
    if (cal.c_unit[i] == 0.0) cal.c_unit[i] = fallback_c_unit;
  }
  return cal;
}

}  // namespace

const Calibration& calibrate(const ApspOptions& opts) {
  static std::mutex mu;
  static std::map<std::string, Calibration> cache;
  // The probe runs execute real (simulated) solves, so every option that
  // changes their cost must be part of the key — keying on the device alone
  // would let two configs on the same device silently share stale
  // calibrations (e.g. overlap on/off changes block sizes and hidden
  // transfer time, the kernel variant changes measured kernel seconds).
  const std::string key =
      opts.device.name + "/" + std::to_string(opts.device.memory_bytes) +
      "/ov" + std::to_string(opts.overlap_transfers ? 1 : 0) + "/bt" +
      std::to_string(opts.batch_transfers ? 1 : 0) + "/kv" +
      std::to_string(static_cast<int>(opts.kernel_variant)) + "/qf" +
      std::to_string(opts.johnson_queue_factor) + "/ft" +
      std::to_string(opts.fw_tile);
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, run_calibration(opts)).first;
  }
  return it->second;
}

CostBreakdown estimate_fw(const graph::CsrGraph& g, const ApspOptions& opts) {
  const Calibration& cal = calibrate(opts);
  const double scale =
      static_cast<double>(g.num_vertices()) / static_cast<double>(cal.fw_n0);
  CostBreakdown cost;
  cost.compute_s = cal.fw_t0 * std::pow(scale, cal.fw_exponent);
  cost.transfer_s =
      fw_transfer_model(g.num_vertices(), opts.device, opts.overlap_transfers);
  cost.overlapped = opts.overlap_transfers;
  return cost;
}

std::int64_t johnson_num_batches(vidx_t n, int bat) {
  GAPSP_CHECK(bat > 0, "batch size must be positive");
  // 64-bit on purpose: n + bat - 1 overflows a 32-bit vidx_t for n near the
  // type's maximum with a small batch size.
  return (static_cast<std::int64_t>(n) + bat - 1) / bat;
}

CostBreakdown estimate_johnson(const graph::CsrGraph& g,
                               const ApspOptions& opts, int sample_batches) {
  int bat = 0;
  try {
    bat = johnson_batch_size(opts.device, g, opts.johnson_queue_factor,
                             opts.overlap_transfers ? 2 : 1);
  } catch (const Error&) {
    // Not even one SSSP instance fits the device: infeasible, like
    // estimate_boundary when no k fits — never an exception the selector
    // has to survive.
    CostBreakdown cost;
    cost.feasible = false;
    cost.compute_s = cost.transfer_s = std::numeric_limits<double>::infinity();
    return cost;
  }
  const std::int64_t nb = johnson_num_batches(g.num_vertices(), bat);
  // Randomly choose up to `sample_batches` distinct batches (paper: k = 5).
  Rng rng(opts.seed ^ 0x5eedULL);
  std::vector<int> chosen;
  if (nb <= sample_batches) {
    for (int i = 0; i < static_cast<int>(nb); ++i) chosen.push_back(i);
  } else {
    while (static_cast<int>(chosen.size()) < sample_batches) {
      const int c = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(nb)));
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
        chosen.push_back(c);
      }
    }
  }
  // Sampling is an internal probe — keep it out of the user's timeline.
  ApspOptions sample_opts = opts;
  sample_opts.trace = nullptr;
  const JohnsonSample sample = johnson_sample_batches(g, sample_opts, chosen);
  CostBreakdown cost;
  cost.compute_s = sample.kernel_seconds * static_cast<double>(nb) /
                   static_cast<double>(std::max(1, sample.sampled));
  cost.transfer_s = johnson_transfer_model(g.num_vertices(), opts.device);
  cost.overlapped = opts.overlap_transfers;
  return cost;
}

CostBreakdown estimate_boundary(const graph::CsrGraph& g,
                                const ApspOptions& opts) {
  CostBreakdown cost;
  BoundaryPlan plan;
  try {
    plan = plan_boundary(g, opts);
  } catch (const Error&) {
    cost.feasible = false;
    cost.compute_s = cost.transfer_s = std::numeric_limits<double>::infinity();
    return cost;
  }
  const Calibration& cal = calibrate(opts);
  const vidx_t n = g.num_vertices();
  const double ideal = std::pow(static_cast<double>(n), 0.75);
  // Small-separator test on the plan's own partition (k = √n/4): the road
  // family sits near 1.2·n^(3/4) boundary vertices, the mesh family at 4+.
  const bool small_sep =
      static_cast<double>(plan.nb) < 2.5 * ideal && cal.bnd_t0 > 0.0;
  if (small_sep) {
    const double scale =
        static_cast<double>(n) / static_cast<double>(cal.bnd_n0);
    cost.compute_s = cal.bnd_t0 * std::pow(scale, cal.bnd_exponent);
  } else {
    const double b =
        static_cast<double>(plan.nb) / static_cast<double>(plan.k);
    const int bucket = boundary_bucket(n, plan.nb, kNumBuckets);
    if (cal.c_unit[bucket] <= 0.0) {
      cost.feasible = false;
      cost.compute_s = cost.transfer_s =
          std::numeric_limits<double>::infinity();
      return cost;
    }
    cost.compute_s = boundary_nop(n, plan.k, b) * cal.c_unit[bucket];
  }
  cost.transfer_s = boundary_transfer_model(plan, n, opts.device);
  // Overlap only helps when the batched D2H path is actually in use.
  cost.overlapped = opts.overlap_transfers && opts.batch_transfers &&
                    plan.staging_rows > 0;
  return cost;
}

}  // namespace gapsp::core
