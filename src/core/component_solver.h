// Connected-component pre-decomposition.
//
// APSP distances across connected components are kInf by definition, so on
// a disconnected graph every all-pairs algorithm wastes the cross-component
// share of its O(n²)+ work and output traffic. This wrapper splits the
// graph into components and solves them independently, writing per-group
// distance blocks into the full store — whose off-diagonal blocks simply
// stay at their kInf initialization.
//
// Tiny components are *batched*: each device solve carries fixed costs
// (graph upload, kernel launches), so solving hundreds of fragments one by
// one is slower than the monolithic run even though it moves less data.
// Components below `small_threshold` are packed into solve groups of up to
// `group_target` vertices and solved together; the cross-fragment entries
// inside one group are computed (and correctly come out kInf) but the
// group totals stay near Σnᵢ² instead of n².
#pragma once

#include "core/apsp.h"

namespace gapsp::core {

struct ComponentSolverOptions {
  /// Components with fewer vertices than this are packed into groups.
  vidx_t small_threshold = 64;
  /// Target vertex count per packed group.
  vidx_t group_target = 512;
};

struct ComponentResult {
  ApspResult result;  ///< aggregated metrics; perm maps old -> stored id
  int num_components = 0;
  int num_groups = 0;
  vidx_t largest_component = 0;
  /// Algorithm used per solve group (group order = store row order).
  std::vector<Algorithm> per_group;
};

/// Solves APSP per connected component (small ones batched). The store must
/// be freshly constructed (all kInf); cross-group entries are never written.
/// The result's perm maps each vertex to its row in the store.
ComponentResult solve_apsp_per_component(
    const graph::CsrGraph& g, const ApspOptions& opts, DistStore& store,
    const SelectorOptions& sel = {}, const ComponentSolverOptions& cs = {});

}  // namespace gapsp::core
