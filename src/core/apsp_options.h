// Shared option/metric/result types of the public APSP API.
#pragma once

#include <string>
#include <vector>

#include "core/kernel_engine.h"
#include "core/transfer_codec.h"
#include "partition/kway.h"
#include "sim/device_spec.h"
#include "sim/fault.h"
#include "sim/trace.h"
#include "util/common.h"

namespace gapsp::core {

enum class Algorithm {
  kAuto,                  ///< density filter + cost models pick (Sec. IV)
  kBlockedFloydWarshall,  ///< out-of-core blocked FW (Sec. III-A)
  kJohnson,               ///< batched MSSP Johnson (Sec. III-B)
  kBoundary,              ///< out-of-core boundary algorithm (Sec. III-C)
};

const char* algorithm_name(Algorithm a);

/// SSSP kernel run inside the Johnson MSSP launch. The paper adopts
/// Near-Far (Sec. II-B) after arguing Dijkstra exposes too little
/// parallelism, Bellman-Ford does redundant work, and full delta-stepping
/// pays heavy bucket-management overhead; the alternatives are kept so the
/// argument is reproducible (bench_sssp_kernel_ablation).
enum class SsspKernel {
  kNearFar,
  kDeltaStepping,
  kBellmanFord,
};

const char* sssp_kernel_name(SsspKernel k);

struct ApspOptions {
  /// Simulated device. The default scales a V100 down (memory and SM count
  /// together, host link unchanged) so out-of-core behaviour is exercised at
  /// this machine's graph sizes.
  sim::DeviceSpec device = sim::DeviceSpec::v100_scaled();

  Algorithm algorithm = Algorithm::kAuto;
  std::uint64_t seed = 1;

  /// Optional timeline recorder attached to the simulated device (not
  /// owned); export with sim::TraceRecorder::write_chrome_trace.
  sim::TraceRecorder* trace = nullptr;

  // ---- blocked Floyd–Warshall ----
  /// Shared-memory sub-tile of the in-core blocked FW kernels.
  int fw_tile = 64;

  // ---- Johnson ----
  /// Per-instance SSSP kernel (paper: Near-Far).
  SsspKernel sssp_kernel = SsspKernel::kNearFar;
  /// The constant c of bat = (L - S)/(c·m): per-instance worklist storage in
  /// units of m edges.
  double johnson_queue_factor = 2.0;
  /// Near-Far bucket width; <= 0 derives it from the mean edge weight.
  dist_t delta = 0;
  /// Dynamic parallelism: vertices with out-degree >= threshold have their
  /// edge lists traversed by child kernels. <= 0 disables.
  bool dynamic_parallelism = true;
  int heavy_degree_threshold = 16;

  // ---- boundary algorithm ----
  /// Number of components k; 0 selects the paper's experimental default
  /// √n / 4 (Sec. V-F).
  int num_components = 0;
  /// Partitioning strategy (direct k-way vs recursive bisection).
  part::Method partition_method = part::Method::kMultilevelKway;
  /// Transfer batching (accumulate N_row block-rows per D2H transfer).
  bool batch_transfers = true;

  // ---- storage sink ----
  /// Effective bytes per element the output stream moves: sizeof(dist_t)
  /// for a raw store, sizeof(dist_t)/R once a block-compressed sink at
  /// measured ratio R absorbs the stream. Scales the n² output term of the
  /// Sec. IV-B transfer models so the selector sees the cheaper I/O.
  double store_bytes_per_element = sizeof(dist_t);

  // ---- all algorithms ----
  /// Double-buffered compute/transfer overlap on extra streams through
  /// pinned staging (sim::StreamPipeline). Applies to all three algorithms:
  /// blocked FW prefetches the next row/remainder tiles while the current
  /// min-plus kernel runs, Johnson drains each batch's rows while the next
  /// batch's SSSP kernel executes, and the boundary algorithm ping-pongs its
  /// staging buffers. Costs extra device memory for the second buffer of
  /// each pair (FW blocks shrink, Johnson's bat shrinks accordingly).
  bool overlap_transfers = true;

  /// Compressed host↔device transfer path (DESIGN.md §14): staged tiles are
  /// z1-encoded into the pinned lanes and materialized by a modeled
  /// on-device decode at DeviceSpec::decode_gbps, with per-tile raw
  /// fallback. kAuto engages when the device's decode rate beats its host
  /// link. Results are bit-identical in every mode.
  TransferCompression transfer_compression = TransferCompression::kAuto;

  // ---- kernel engine (DESIGN.md §9) ----
  /// Min-plus microkernel variant run inside the simulated kernels. kAuto
  /// micro-benchmarks the candidates once per process and caches the winner.
  /// Every variant produces bit-identical distances; the choice affects host
  /// wall-clock only, never the simulated timeline.
  KernelVariant kernel_variant = KernelVariant::kAuto;
  /// Host threads executing the blocks of a grid launch (Device::
  /// launch_grid): 0 = the whole global pool, 1 = serial. Purely a
  /// wall-clock knob; results and the simulated timeline are identical for
  /// every setting.
  int kernel_threads = 0;

  // ---- fault injection & recovery ----
  /// Fault schedule injected into the simulated device(s); nullptr disables
  /// injection entirely (not owned). Multi-device runs derive one injector
  /// per device from this plan (seed decorrelated by device index).
  const sim::FaultPlan* faults = nullptr;
  /// Pre-built injector to attach instead of materializing one from
  /// `faults` (not owned). Used internally so scripted faults stay consumed
  /// across degrade-and-retry attempts; most callers leave it null.
  sim::FaultInjector* fault_injector = nullptr;
  /// Bounded retry-with-backoff applied to transient faults on-device.
  sim::RetryPolicy retry;
  /// How many times solve_apsp may degrade the plan (disable overlap, then
  /// shrink device memory) and re-run after a device OOM / alloc fault.
  int max_degradations = 2;
  /// Sidecar path for round-level checkpoints (empty disables). The file is
  /// written atomically after each FW k-round / Johnson batch / boundary
  /// step and removed once apsp() completes.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` when it holds a compatible checkpoint
  /// (same graph fingerprint, algorithm, and blocking); otherwise start
  /// fresh. The resumed run produces bit-identical distances.
  bool resume = false;
};

struct ApspMetrics {
  double sim_seconds = 0.0;       ///< simulated end-to-end device makespan
  double wall_seconds = 0.0;      ///< host wall-clock of the functional run
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  /// Overlap efficiency: transfer seconds hidden under concurrent kernel
  /// execution vs exposed on the critical path (hidden + exposed equals
  /// transfer_seconds).
  double hidden_transfer_seconds = 0.0;
  double exposed_transfer_seconds = 0.0;
  std::size_t bytes_h2d = 0;
  std::size_t bytes_d2h = 0;
  long long transfers_h2d = 0;
  long long transfers_d2h = 0;
  /// Compressed transfer path, per lane: logical payload bytes routed
  /// through the TransferCodec (raw) vs bytes charged on the link (wire);
  /// raw-fallback tiles count equally on both sides, so raw/wire is the
  /// honest end-to-end wire ratio. All zero when the path is off.
  std::size_t bytes_h2d_raw = 0;
  std::size_t bytes_h2d_wire = 0;
  std::size_t bytes_d2h_raw = 0;
  std::size_t bytes_d2h_wire = 0;
  double decode_seconds = 0.0;  ///< modeled on-device z1 decode/encode busy
  long long decodes = 0;
  long long kernels = 0;
  long long child_kernels = 0;
  double total_ops = 0.0;
  std::size_t device_peak_bytes = 0;
  /// High-water mark of pinned-host staging used by the transfer pipeline.
  std::size_t pinned_peak_bytes = 0;

  /// Microkernel variant the kernel engine actually ran with ("naive" |
  /// "tiled" | "tiled-reg"; the autotuner's pick when configured auto).
  std::string kernel_variant;

  // Algorithm-specific (0 when not applicable).
  int fw_num_blocks = 0;        ///< n_d
  int johnson_batch_size = 0;   ///< bat
  int johnson_num_batches = 0;  ///< n_b
  int boundary_k = 0;           ///< components
  vidx_t boundary_nodes = 0;    ///< NB

  // Fault injection / recovery (0 when no faults fired).
  long long faults_injected = 0;
  long long transfer_retries = 0;
  long long kernel_retries = 0;
  long long decode_retries = 0;
  double retry_backoff_seconds = 0.0;
  /// Times solve_apsp degraded the plan (disabled overlap / shrank memory)
  /// after a device OOM and re-ran.
  int degradations = 0;
  long long checkpoints_written = 0;
  /// Progress units (FW rounds / Johnson batches / boundary steps) skipped
  /// because a checkpoint restored them.
  long long resumed_progress = 0;

  // Store compression (0 when no sink ran). Filled by the --keep-store
  // compaction / `apsp_cli compact` sink, not by the solve loop — blocked
  // FW rewrites every tile O(n_d) times, so compression happens only where
  // bytes leave the hot loop for good (DESIGN.md §11).
  std::size_t store_raw_bytes = 0;
  std::size_t store_compressed_bytes = 0;
  long long store_tiles = 0;
  long long store_inf_tiles = 0;  ///< all-kInf tiles kept as directory entries
  double store_compact_seconds = 0.0;
};

/// Result handle. Distances live in the DistStore the caller supplied; when
/// `perm` is non-empty the store is in the permuted vertex order (boundary
/// algorithm) and perm[old_id] = stored_id.
struct ApspResult {
  Algorithm used = Algorithm::kAuto;
  ApspMetrics metrics;
  std::vector<vidx_t> perm;

  /// Maps an original vertex id to its row/column in the store.
  vidx_t stored_id(vidx_t v) const {
    return perm.empty() ? v : perm[static_cast<std::size_t>(v)];
  }
};

}  // namespace gapsp::core
