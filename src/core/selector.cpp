#include "core/selector.h"

#include <limits>

namespace gapsp::core {

const AlgoEstimate& SelectorReport::estimate(Algorithm a) const {
  for (const auto& e : estimates) {
    if (e.algo == a) return e;
  }
  throw Error("no estimate for algorithm");
}

SelectorReport select_algorithm(const graph::CsrGraph& g,
                                const ApspOptions& opts,
                                const SelectorOptions& sel) {
  SelectorReport report;
  report.density_percent = g.density_percent();

  bool consider_fw = false, consider_boundary = false;
  if (report.density_percent > sel.dense_percent) {
    consider_fw = true;  // Johnson vs blocked FW
  } else if (report.density_percent < sel.sparse_percent) {
    consider_boundary = true;  // Johnson vs boundary
  }
  // Johnson is always a candidate (and the sole one in the middle band).

  AlgoEstimate fw{Algorithm::kBlockedFloydWarshall, consider_fw, {}};
  AlgoEstimate johnson{Algorithm::kJohnson, true, {}};
  AlgoEstimate boundary{Algorithm::kBoundary, consider_boundary, {}};

  // An estimator that cannot even plan on this device (graph too large for
  // one SSSP instance, no feasible k, ...) marks its candidate infeasible
  // instead of disqualifying the whole selection.
  auto guarded = [](auto&& estimator) -> CostBreakdown {
    try {
      return estimator();
    } catch (const Error&) {
      CostBreakdown c;
      c.feasible = false;
      c.compute_s = c.transfer_s = std::numeric_limits<double>::infinity();
      return c;
    }
  };
  johnson.cost =
      guarded([&] { return estimate_johnson(g, opts, sel.sample_batches); });
  if (consider_fw) fw.cost = guarded([&] { return estimate_fw(g, opts); });
  if (consider_boundary) {
    boundary.cost = guarded([&] { return estimate_boundary(g, opts); });
  }

  report.estimates = {fw, johnson, boundary};
  // Pick the cheapest *feasible* considered candidate. Seeding `best` from
  // Johnson unconditionally would let an infeasible or infinite Johnson
  // estimate pin the choice against feasible FW/boundary estimates — the
  // selector would return an algorithm it just estimated as unrunnable.
  report.chosen = Algorithm::kJohnson;  // explicit last resort: nothing is
                                        // feasible, Johnson degrades best
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : report.estimates) {
    if (!e.considered || !e.cost.feasible) continue;
    if (e.cost.total() < best) {
      best = e.cost.total();
      report.chosen = e.algo;
    }
  }
  return report;
}

}  // namespace gapsp::core
