#include "core/selector.h"

#include <limits>

namespace gapsp::core {

const AlgoEstimate& SelectorReport::estimate(Algorithm a) const {
  for (const auto& e : estimates) {
    if (e.algo == a) return e;
  }
  throw Error("no estimate for algorithm");
}

SelectorReport select_algorithm(const graph::CsrGraph& g,
                                const ApspOptions& opts,
                                const SelectorOptions& sel) {
  SelectorReport report;
  report.density_percent = g.density_percent();

  bool consider_fw = false, consider_boundary = false;
  if (report.density_percent > sel.dense_percent) {
    consider_fw = true;  // Johnson vs blocked FW
  } else if (report.density_percent < sel.sparse_percent) {
    consider_boundary = true;  // Johnson vs boundary
  }
  // Johnson is always a candidate (and the sole one in the middle band).

  AlgoEstimate fw{Algorithm::kBlockedFloydWarshall, consider_fw, {}};
  AlgoEstimate johnson{Algorithm::kJohnson, true, {}};
  AlgoEstimate boundary{Algorithm::kBoundary, consider_boundary, {}};

  johnson.cost = estimate_johnson(g, opts, sel.sample_batches);
  if (consider_fw) fw.cost = estimate_fw(g, opts);
  if (consider_boundary) boundary.cost = estimate_boundary(g, opts);

  report.estimates = {fw, johnson, boundary};
  report.chosen = Algorithm::kJohnson;
  double best = johnson.cost.total();
  for (const auto& e : report.estimates) {
    if (!e.considered || !e.cost.feasible) continue;
    if (e.cost.total() < best) {
      best = e.cost.total();
      report.chosen = e.algo;
    }
  }
  return report;
}

}  // namespace gapsp::core
