// Kernel engine: cache-blocked / register-blocked min-plus microkernel
// variants with a process-wide configuration and a startup autotuner
// (DESIGN.md §9). minplus_accum() dispatches through the engine, so every
// dense kernel — OOC FW panels, boundary dist4 chains, the in-core
// baseline — picks up the selected variant. All variants are bit-identical:
// a cell's result is the min over the same candidate set, and integer min
// is order-independent.
#pragma once

#include <cstddef>
#include <string>

#include "util/common.h"

namespace gapsp::core {

enum class KernelVariant {
  kAuto,      ///< micro-benchmark the candidates once, cache the winner
  kNaive,     ///< scalar r-k-c triple loop (the pre-engine kernel)
  kTiled,     ///< k-tiled loops, kInf-row skip hoisted to tile granularity
  kTiledReg,  ///< kTiled + 4×16 register accumulator block
};

const char* kernel_variant_name(KernelVariant v);

/// Parses "auto" | "naive" | "tiled" | "tiled-reg"; throws on anything else.
KernelVariant parse_kernel_variant(const std::string& name);

/// Process-wide kernel engine configuration. `threads` is the grid-parallel
/// execution width handed to sim::Device::set_kernel_threads by
/// configure_kernels (0 = whole pool, 1 = serial); it never changes results
/// or the simulated timeline, only host wall-clock.
struct KernelConfig {
  KernelVariant variant = KernelVariant::kAuto;
  int threads = 0;
};

void set_kernel_config(const KernelConfig& cfg);
KernelConfig kernel_config();

/// The variant minplus_accum actually runs: the configured one, or — when
/// configured kAuto — the autotuner's cached winner (tuned once per
/// process, on first use).
KernelVariant resolved_kernel_variant();

/// Micro-benchmarks the candidate variants on an FW-shaped working set and
/// returns the fastest (never kAuto). Results of all candidates are
/// bit-identical, so a timing-noise-dependent winner is still correct.
KernelVariant autotune_kernel_variant();

// ---- variant-explicit kernels (all compute C = min(C, A ⊗ B)) ----

void minplus_accum_naive(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc);

void minplus_accum_tiled(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc);

void minplus_accum_tiled_reg(dist_t* c, std::size_t ldc, const dist_t* a,
                             std::size_t lda, const dist_t* b,
                             std::size_t ldb, vidx_t nr, vidx_t nk,
                             vidx_t nc);

/// Runs one explicit variant (kAuto resolves first).
void minplus_accum_variant(KernelVariant v, dist_t* c, std::size_t ldc,
                           const dist_t* a, std::size_t lda, const dist_t* b,
                           std::size_t ldb, vidx_t nr, vidx_t nk, vidx_t nc);

}  // namespace gapsp::core
