// Kernel engine: cache-blocked / register-blocked / vectorized min-plus
// microkernel variants with a process-wide configuration and a startup
// autotuner (DESIGN.md §9, §12). minplus_accum() dispatches through the
// engine, so every dense kernel — OOC FW panels, boundary dist4 chains, the
// in-core baseline — picks up the selected variant. All variants are
// bit-identical: a cell's result is the min over the same candidate set, and
// integer min is order-independent.
#pragma once

#include <cstddef>
#include <string>

#include "util/common.h"

namespace gapsp::core {

enum class KernelVariant {
  kAuto,      ///< micro-benchmark the candidates once, cache the winner
  kNaive,     ///< scalar r-k-c triple loop (the pre-engine kernel)
  kTiled,     ///< k-tiled loops, kInf-row skip hoisted to tile granularity
  kTiledReg,  ///< kTiled + 4×16 register accumulator block
  kSimd,      ///< 8×16 lane-vector register tile (AVX2/NEON/autovec)
  kTensor,    ///< kSimd over a lane-major packed k-panel (fused tiles)
};

/// Number of concrete (non-kAuto) variants; the autotuner measures all of
/// them, in enum order, and kernel_variant_index() maps into [0, this).
inline constexpr int kNumKernelVariants = 5;

const char* kernel_variant_name(KernelVariant v);

/// Dense index of a concrete variant (kNaive = 0 … kTensor = 4); -1 for
/// kAuto. Used to address KernelTuning::seconds_per_op.
int kernel_variant_index(KernelVariant v);

/// Parses "auto" | "naive" | "tiled" | "tiled-reg" | "simd" | "tensor";
/// throws on anything else. Both the CLI and the bench route their
/// --kernel-variant values through here so an unknown name is an error
/// everywhere, never a silent skip.
KernelVariant parse_kernel_variant(const std::string& name);

/// Process-wide kernel engine configuration. `threads` is the grid-parallel
/// execution width handed to sim::Device::set_kernel_threads by
/// configure_kernels (0 = whole pool, 1 = serial); it never changes results
/// or the simulated timeline, only host wall-clock.
struct KernelConfig {
  KernelVariant variant = KernelVariant::kAuto;
  int threads = 0;
};

void set_kernel_config(const KernelConfig& cfg);
KernelConfig kernel_config();

/// The variant minplus_accum actually runs: the configured one, or — when
/// configured kAuto — the autotuner's cached winner (tuned once per
/// process, on first use).
KernelVariant resolved_kernel_variant();

/// Micro-benchmarks the candidate variants on an FW-shaped working set and
/// returns the fastest (never kAuto). Results of all candidates are
/// bit-identical, so a timing-noise-dependent winner is still correct.
/// Also refreshes the process-wide KernelTuning table as a side effect.
KernelVariant autotune_kernel_variant();

/// Host-measured per-variant timings from the autotune working set:
/// seconds_per_op[kernel_variant_index(v)] is the best-of-reps host seconds
/// divided by the minplus_ops() of the tuning shape — the per-element
/// constant the cost model scales by (DESIGN.md §12). Purely host
/// wall-clock; the simulated timeline never depends on it.
struct KernelTuning {
  bool measured = false;
  KernelVariant winner = KernelVariant::kTiledReg;
  double seconds_per_op[kNumKernelVariants] = {};
};

/// Returns the tuning table, measuring it first if this process has not yet
/// (lazy, thread-safe; one measurement per process unless
/// autotune_kernel_variant() is called again explicitly).
KernelTuning kernel_tuning();

/// Measured speed of `v` relative to kNaive on the tuning working set
/// (e.g. 2.0 = half the host time per element). 1.0 for kNaive by
/// definition; kAuto resolves to the tuned winner first.
double kernel_variant_rel_speed(KernelVariant v);

// ---- vector-lane backend introspection (simd_lane.h) ----

/// ISA the simd/tensor kernels were compiled against ("avx2" | "neon" |
/// "autovec") and its lane width in dist_t elements.
const char* simd_lane_isa();
int simd_lane_width();
/// True when the simd/tensor TU was built with AVX2 code generation — the
/// dispatcher then requires runtime AVX2 support (and falls back to the
/// scalar tiled kernel, bit-identically, when the CPU lacks it).
bool simd_kernels_built_avx2();

// ---- variant-explicit kernels (all compute C = min(C, A ⊗ B)) ----

void minplus_accum_naive(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc);

void minplus_accum_tiled(dist_t* c, std::size_t ldc, const dist_t* a,
                         std::size_t lda, const dist_t* b, std::size_t ldb,
                         vidx_t nr, vidx_t nk, vidx_t nc);

void minplus_accum_tiled_reg(dist_t* c, std::size_t ldc, const dist_t* a,
                             std::size_t lda, const dist_t* b,
                             std::size_t ldb, vidx_t nr, vidx_t nk,
                             vidx_t nc);

/// Vector register-tile kernel (simd_lane.h backend; requires operands in
/// [0, kInf] — the invariant every distance matrix here satisfies).
void minplus_accum_simd(dist_t* c, std::size_t ldc, const dist_t* a,
                        std::size_t lda, const dist_t* b, std::size_t ldb,
                        vidx_t nr, vidx_t nk, vidx_t nc);

/// Fused-tile layout kernel: packs each k-panel of B into contiguous
/// lane-major tiles and runs the batched vector min-plus over them.
void minplus_accum_tensor(dist_t* c, std::size_t ldc, const dist_t* a,
                          std::size_t lda, const dist_t* b, std::size_t ldb,
                          vidx_t nr, vidx_t nk, vidx_t nc);

/// Runs one explicit variant (kAuto resolves first).
void minplus_accum_variant(KernelVariant v, dist_t* c, std::size_t ldc,
                           const dist_t* a, std::size_t lda, const dist_t* b,
                           std::size_t ldb, vidx_t nr, vidx_t nk, vidx_t nc);

namespace detail {

/// Naive triple loop over a sub-rectangle of rows × [c_lo, c_hi) — the
/// shared remainder path of the register-blocked and vector kernels.
void minplus_scalar_block(dist_t* c, std::size_t ldc, const dist_t* a,
                          std::size_t lda, const dist_t* b, std::size_t ldb,
                          vidx_t r_lo, vidx_t r_hi, vidx_t nk, vidx_t c_lo,
                          vidx_t c_hi);

/// Backend entry points defined in kernel_engine_simd.cpp (possibly built
/// with AVX2 codegen). Call only through minplus_accum_simd/_tensor, which
/// apply the runtime CPU gate.
void minplus_accum_simd_impl(dist_t* c, std::size_t ldc, const dist_t* a,
                             std::size_t lda, const dist_t* b,
                             std::size_t ldb, vidx_t nr, vidx_t nk,
                             vidx_t nc);
void minplus_accum_tensor_impl(dist_t* c, std::size_t ldc, const dist_t* a,
                               std::size_t lda, const dist_t* b,
                               std::size_t ldb, vidx_t nr, vidx_t nk,
                               vidx_t nc);

}  // namespace detail

}  // namespace gapsp::core
