#include "core/store_integrity.h"

#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"
#include "core/dist_store.h"

namespace gapsp::core {

namespace {

constexpr char kMagic[8] = {'G', 'A', 'P', 'S', 'P', 'S', 'M', '1'};
constexpr std::size_t kHeaderBytes = 64;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_i64(std::uint8_t* dst, std::int64_t v) {
  for (int i = 0; i < 8; ++i)
    dst[i] = static_cast<std::uint8_t>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff);
}

std::int64_t get_i64(const std::uint8_t* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::uint64_t tile_checksum(const dist_t* data, std::size_t elems) {
  return fnv1a(data, elems * sizeof(dist_t));
}

std::string checksum_sidecar_path(const std::string& store_path) {
  return store_path + ".sum";
}

StoreChecksums compute_store_checksums(DistStore& store, vidx_t tile) {
  GAPSP_CHECK(tile > 0, "checksum tile size must be positive");
  StoreChecksums out;
  out.n = store.n();
  out.tile = tile;
  out.tiles_per_side = (out.n + tile - 1) / tile;
  out.sums.assign(static_cast<std::size_t>(out.tiles_per_side) *
                      out.tiles_per_side,
                  0);
  std::vector<dist_t> buf(static_cast<std::size_t>(tile) * tile);
  for (vidx_t bi = 0; bi < out.tiles_per_side; ++bi) {
    const vidx_t row0 = bi * tile;
    const vidx_t rows = std::min<vidx_t>(tile, out.n - row0);
    for (vidx_t bj = 0; bj < out.tiles_per_side; ++bj) {
      const vidx_t col0 = bj * tile;
      const vidx_t cols = std::min<vidx_t>(tile, out.n - col0);
      store.read_block(row0, col0, rows, cols, buf.data(), cols);
      out.sums[static_cast<std::size_t>(bi) * out.tiles_per_side + bj] =
          tile_checksum(buf.data(), static_cast<std::size_t>(rows) * cols);
    }
  }
  return out;
}

void write_store_checksums(const StoreChecksums& sums,
                           const std::string& path) {
  GAPSP_CHECK(sums.present(), "cannot write an absent checksum sidecar");
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw IoError("cannot create checksum sidecar " + tmp);

    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    put_i64(header + 8, sums.n);
    put_i64(header + 16, sums.tile);
    put_i64(header + 24, sums.tiles_per_side);
    put_i64(header + 32,
            static_cast<std::int64_t>(fnv1a(
                sums.sums.data(), sums.sums.size() * sizeof(std::uint64_t))));
    if (std::fwrite(header, 1, kHeaderBytes, f.get()) != kHeaderBytes ||
        std::fwrite(sums.sums.data(), sizeof(std::uint64_t), sums.sums.size(),
                    f.get()) != sums.sums.size() ||
        std::fflush(f.get()) != 0) {
      std::remove(tmp.c_str());
      throw IoError("short write to checksum sidecar " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename checksum sidecar into place: " + path);
  }
}

bool load_store_checksums(const std::string& path, StoreChecksums& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;  // absent sidecar: verification is simply off

  std::uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw CorruptError("checksum sidecar too short: " + path);
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
    throw CorruptError("bad checksum sidecar magic: " + path);

  StoreChecksums s;
  const std::int64_t n = get_i64(header + 8);
  const std::int64_t tile = get_i64(header + 16);
  const std::int64_t tps = get_i64(header + 24);
  const std::uint64_t self_sum = static_cast<std::uint64_t>(get_i64(header + 32));
  if (n < 0 || tile <= 0 || tps != (n + tile - 1) / tile)
    throw CorruptError("inconsistent checksum sidecar geometry: " + path);
  s.n = static_cast<vidx_t>(n);
  s.tile = static_cast<vidx_t>(tile);
  s.tiles_per_side = static_cast<vidx_t>(tps);
  s.sums.resize(static_cast<std::size_t>(tps) * tps);
  if (std::fread(s.sums.data(), sizeof(std::uint64_t), s.sums.size(),
                 f.get()) != s.sums.size())
    throw IoError("short read from checksum sidecar " + path);
  if (fnv1a(s.sums.data(), s.sums.size() * sizeof(std::uint64_t)) != self_sum)
    throw CorruptError("checksum sidecar failed its self-check: " + path);

  out = std::move(s);
  return true;
}

}  // namespace gapsp::core
