// Round-level checkpoint sidecar ("GAPSPCK1") for the out-of-core drivers.
//
// The distance store itself is the durable state — all three algorithms
// mutate it monotonically (min-plus relaxations only ever lower entries, and
// Johnson/boundary writes fully overwrite their rows) — so a checkpoint only
// needs to record *how far* a run got plus, for the boundary algorithm, the
// small host-side intermediates (dist2/dist3) that are not in the store yet.
// On resume the driver re-runs from the last completed round/batch/step; the
// re-executed unit is idempotent over the partially-updated store, so the
// final matrix is bit-identical to an uninterrupted run. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/apsp_options.h"
#include "graph/csr_graph.h"

namespace gapsp::core {

struct Checkpoint {
  /// Which algorithm wrote this checkpoint (core::Algorithm).
  std::uint32_t algorithm = 0;
  /// Fingerprint of the input graph plus the structural parameters of the
  /// run (blocking, batch size, component count). A resume with any
  /// mismatch starts fresh — the store contents would not line up.
  std::uint64_t fingerprint = 0;
  std::int64_t n = 0;
  /// Completed progress units: FW k-rounds, Johnson batches, or the last
  /// finished boundary step (2 or 3).
  std::int64_t progress = 0;
  /// Algorithm-specific shape: FW (b, n_d), Johnson (bat, n_b), boundary
  /// (k, NB).
  std::int64_t aux0 = 0;
  std::int64_t aux1 = 0;
  /// Host-side intermediates not yet reflected in the store (boundary
  /// dist2 blobs after step 2, plus dist3 after step 3). Empty elsewhere.
  /// Always uncompressed here: the sidecar stores it as a z1 frame
  /// (compressed_store.h) when that is smaller, transparently to callers.
  std::vector<std::uint8_t> payload;
};

/// FNV-1a over a byte range, exposed so callers can fold extra parameters
/// into a fingerprint (seed with the previous hash).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Fingerprint of the CSR arrays (offsets, targets, weights) and n/m.
std::uint64_t graph_fingerprint(const graph::CsrGraph& g);

/// Atomically writes `ck` to `path` (tmp file + rename) with a trailing
/// content checksum. Throws IoError when the filesystem misbehaves.
void write_checkpoint(const std::string& path, const Checkpoint& ck);

/// Loads the checkpoint at `path`. Returns false (and leaves *ck untouched)
/// when the file is missing, truncated, corrupt, or not a GAPSPCK1 sidecar —
/// resume then simply starts fresh.
bool read_checkpoint(const std::string& path, Checkpoint* ck);

/// Removes the sidecar (missing file is not an error).
void remove_checkpoint(const std::string& path);

}  // namespace gapsp::core
