// Binary-heap Dijkstra — the correctness reference for every APSP
// implementation in the project, and the per-source worker of the BGL-plus
// multicore baseline (Sec. V-C).
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::sssp {

/// Operation counters fed into the CPU machine model (baseline costing).
struct SsspCounters {
  long long heap_pops = 0;
  long long heap_pushes = 0;
  long long relaxations = 0;

  SsspCounters& operator+=(const SsspCounters& o) {
    heap_pops += o.heap_pops;
    heap_pushes += o.heap_pushes;
    relaxations += o.relaxations;
    return *this;
  }
};

/// Single-source shortest paths from `source`; unreachable vertices get
/// kInf. Lazy-deletion binary heap, O((n+m) log n).
std::vector<dist_t> dijkstra(const graph::CsrGraph& g, vidx_t source,
                             SsspCounters* counters = nullptr);

/// In-place variant writing into a caller-provided row of length n.
void dijkstra_into(const graph::CsrGraph& g, vidx_t source,
                   std::span<dist_t> out, SsspCounters* counters = nullptr);

}  // namespace gapsp::sssp
