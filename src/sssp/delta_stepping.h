// Delta-stepping (Meyer & Sanders) — the SSSP variant used by the Galois
// comparison point in Fig. 4, and the generalization the paper's Near-Far
// implementation simplifies.
#pragma once

#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::sssp {

struct DeltaSteppingResult {
  std::vector<dist_t> dist;
  int buckets_processed = 0;
  long long relaxations = 0;
};

/// Bucketed SSSP. `delta` <= 0 selects a heuristic bucket width (mean edge
/// weight), matching common practice.
DeltaSteppingResult delta_stepping(const graph::CsrGraph& g, vidx_t source,
                                   dist_t delta = 0);

}  // namespace gapsp::sssp
