// Round-based Bellman-Ford. Kept as (a) the maximally-parallel endpoint of
// the SSSP spectrum the paper discusses in Sec. II-B, and (b) a second
// correctness oracle for the Near-Far implementation.
#pragma once

#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::sssp {

struct BellmanFordResult {
  std::vector<dist_t> dist;
  int rounds = 0;               ///< relaxation sweeps until convergence
  long long relaxations = 0;    ///< total edges examined
};

/// Runs until no distance changes (at most n-1 rounds for non-negative
/// weights). O(n·m) worst case.
BellmanFordResult bellman_ford(const graph::CsrGraph& g, vidx_t source);

}  // namespace gapsp::sssp
