#include "sssp/delta_stepping.h"

#include <algorithm>
#include <cmath>

namespace gapsp::sssp {

DeltaSteppingResult delta_stepping(const graph::CsrGraph& g, vidx_t source,
                                   dist_t delta) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(source >= 0 && source < n, "source out of range");
  if (delta <= 0) {
    delta = std::max<dist_t>(1, static_cast<dist_t>(std::lround(g.mean_weight())));
  }
  DeltaSteppingResult r;
  r.dist.assign(static_cast<std::size_t>(n), kInf);
  r.dist[source] = 0;

  // Cyclic bucket array sized to cover the heaviest edge's bucket span.
  const std::size_t num_buckets =
      static_cast<std::size_t>(g.max_weight() / delta) + 2;
  std::vector<std::vector<vidx_t>> buckets(num_buckets);
  buckets[0].push_back(source);
  long long remaining = 1;
  std::size_t base = 0;  // bucket index of the current band

  std::vector<vidx_t> current;
  while (remaining > 0) {
    std::size_t slot = base % num_buckets;
    while (buckets[slot].empty()) {
      ++base;
      slot = base % num_buckets;
    }
    ++r.buckets_processed;
    const dist_t band_hi =
        static_cast<dist_t>(std::min<long long>(
            static_cast<long long>(base + 1) * delta, kInf));
    // Process the band to fixpoint: light-edge reinsertions land back in it.
    while (!buckets[slot].empty()) {
      current.swap(buckets[slot]);
      buckets[slot].clear();
      for (vidx_t u : current) {
        --remaining;
        if (r.dist[u] >= band_hi) {
          // Stale or re-binned entry: re-file it where it now belongs.
          if (r.dist[u] < kInf) {
            buckets[(r.dist[u] / delta) % num_buckets].push_back(u);
            ++remaining;
          }
          continue;
        }
        const auto nbr = g.neighbors(u);
        const auto wts = g.weights(u);
        for (std::size_t i = 0; i < nbr.size(); ++i) {
          ++r.relaxations;
          const dist_t nd = sat_add(r.dist[u], wts[i]);
          if (nd < r.dist[nbr[i]]) {
            r.dist[nbr[i]] = nd;
            buckets[(nd / delta) % num_buckets].push_back(nbr[i]);
            ++remaining;
          }
        }
      }
      current.clear();
    }
    ++base;
  }
  return r;
}

}  // namespace gapsp::sssp
