// Near-Far SSSP (Davidson et al.) — the simplification of delta-stepping the
// paper adopts for its GPU Johnson implementation (Sec. II-B): a two-level
// worklist where vertices below the current threshold i·Δ go to the Near
// queue and are processed now, everything else waits in the Far queue.
//
// This is the *functional* form shared by the device kernel (one instance
// per simulated thread block inside the MSSP launch) and by host-side tests.
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace gapsp::sssp {

struct NearFarStats {
  long long relaxations = 0;      ///< edges examined
  long long vertices_processed = 0;  ///< Near-queue pops (incl. duplicates)
  int phases = 0;                 ///< Near/Far swaps (threshold bumps)
  /// Edges examined at vertices whose out-degree is >= the dynamic-
  /// parallelism threshold — work that the paper offloads to child kernels.
  long long heavy_relaxations = 0;
};

struct NearFarConfig {
  /// Bucket width Δ; <= 0 picks mean edge weight (common heuristic).
  dist_t delta = 0;
  /// Vertices with out-degree >= this are counted as "heavy" for the
  /// dynamic-parallelism optimization; <= 0 disables the split.
  int heavy_degree_threshold = 0;
};

/// Runs one Near-Far SSSP from `source`, writing distances of all n vertices
/// into `dist_out` (length n, preinitialized by this function).
NearFarStats near_far_sssp(const graph::CsrGraph& g, vidx_t source,
                           std::span<dist_t> dist_out,
                           const NearFarConfig& cfg = {});

}  // namespace gapsp::sssp
