#include "sssp/bellman_ford.h"

namespace gapsp::sssp {

BellmanFordResult bellman_ford(const graph::CsrGraph& g, vidx_t source) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(source >= 0 && source < n, "source out of range");
  BellmanFordResult r;
  r.dist.assign(static_cast<std::size_t>(n), kInf);
  r.dist[source] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++r.rounds;
    for (vidx_t u = 0; u < n; ++u) {
      if (r.dist[u] >= kInf) continue;
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        ++r.relaxations;
        const dist_t nd = sat_add(r.dist[u], wts[i]);
        if (nd < r.dist[nbr[i]]) {
          r.dist[nbr[i]] = nd;
          changed = true;
        }
      }
    }
  }
  return r;
}

}  // namespace gapsp::sssp
