#include "sssp/near_far.h"

#include <algorithm>
#include <cmath>

namespace gapsp::sssp {

NearFarStats near_far_sssp(const graph::CsrGraph& g, vidx_t source,
                           std::span<dist_t> dist_out,
                           const NearFarConfig& cfg) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(source >= 0 && source < n, "source out of range");
  GAPSP_CHECK(dist_out.size() == static_cast<std::size_t>(n),
              "output span has wrong length");
  dist_t delta = cfg.delta;
  if (delta <= 0) {
    delta = std::max<dist_t>(1, static_cast<dist_t>(std::lround(g.mean_weight())));
  }

  std::fill(dist_out.begin(), dist_out.end(), kInf);
  dist_out[source] = 0;

  NearFarStats stats;
  std::vector<vidx_t> near{source};
  std::vector<vidx_t> far;
  std::vector<vidx_t> next_near;
  dist_t threshold = delta;

  auto relax_vertex = [&](vidx_t u) {
    const dist_t du = dist_out[u];
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    const bool heavy = cfg.heavy_degree_threshold > 0 &&
                       static_cast<int>(nbr.size()) >= cfg.heavy_degree_threshold;
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      ++stats.relaxations;
      if (heavy) ++stats.heavy_relaxations;
      const dist_t nd = sat_add(du, wts[i]);
      if (nd < dist_out[nbr[i]]) {
        dist_out[nbr[i]] = nd;
        if (nd < threshold) {
          next_near.push_back(nbr[i]);
        } else {
          far.push_back(nbr[i]);
        }
      }
    }
  };

  while (true) {
    // Drain the Near queue for the current band.
    while (!near.empty()) {
      for (vidx_t u : near) {
        ++stats.vertices_processed;
        // Lazy-deletion: skip entries whose vertex was re-binned below the
        // band start by a later relaxation (already reprocessed).
        if (dist_out[u] >= threshold) {
          far.push_back(u);
          continue;
        }
        relax_vertex(u);
      }
      near.clear();
      near.swap(next_near);
    }
    if (far.empty()) break;
    // Swap: advance the threshold, split the Far queue.
    ++stats.phases;
    // Advance the band far enough to capture the closest pending vertex —
    // skipping empty bands (standard Near-Far refinement).
    dist_t closest = kInf;
    for (vidx_t v : far) closest = std::min(closest, dist_out[v]);
    if (closest >= kInf) break;  // only stale entries left
    const dist_t bands =
        std::max<dist_t>(1, (closest - threshold) / delta + 1);
    threshold = sat_add(threshold, static_cast<dist_t>(bands * delta));
    for (vidx_t v : far) {
      if (dist_out[v] < threshold) near.push_back(v);
      else next_near.push_back(v);  // reuse as the residual-far scratch
    }
    far.clear();
    far.swap(next_near);
  }
  return stats;
}

}  // namespace gapsp::sssp
