#include "sssp/dijkstra.h"

#include <queue>

namespace gapsp::sssp {

void dijkstra_into(const graph::CsrGraph& g, vidx_t source,
                   std::span<dist_t> out, SsspCounters* counters) {
  const vidx_t n = g.num_vertices();
  GAPSP_CHECK(source >= 0 && source < n, "source out of range");
  GAPSP_CHECK(out.size() == static_cast<std::size_t>(n),
              "output span has wrong length");
  std::fill(out.begin(), out.end(), kInf);
  out[source] = 0;
  using Item = std::pair<dist_t, vidx_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({0, source});
  SsspCounters local;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    ++local.heap_pops;
    if (d != out[u]) continue;  // stale entry (lazy deletion)
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      ++local.relaxations;
      const dist_t nd = sat_add(d, wts[i]);
      if (nd < out[nbr[i]]) {
        out[nbr[i]] = nd;
        heap.push({nd, nbr[i]});
        ++local.heap_pushes;
      }
    }
  }
  if (counters != nullptr) *counters += local;
}

std::vector<dist_t> dijkstra(const graph::CsrGraph& g, vidx_t source,
                             SsspCounters* counters) {
  std::vector<dist_t> dist(static_cast<std::size_t>(g.num_vertices()));
  dijkstra_into(g, source, dist, counters);
  return dist;
}

}  // namespace gapsp::sssp
