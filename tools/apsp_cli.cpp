// apsp_cli — the command-line front end of the gapsp library.
//
// Solve APSP on a Matrix Market file or a generated graph, with the paper's
// selector or an explicit algorithm, on a simulated V100 or K80:
//
//   apsp_cli --input graph.mtx
//   apsp_cli --generate road:40x40 --query 0,812 --path 0,812
//   apsp_cli --generate rmat:11:14000 --algorithm johnson --device k80
//   apsp_cli --generate mesh:1200:30 --store file --store-path dist.bin --keep-store
//   apsp_cli --generate road:36x36 --trace timeline.json   (chrome://tracing)
//
// Flags:
//   --input FILE            Matrix Market input
//   --generate SPEC         road:RxC | mesh:N:DEG | rmat:SCALE:EDGES |
//                           er:N:M[:0 = leave disconnected] | dense:N:PCT
//   --seed S                generator seed (default 1)
//   --algorithm A           auto | fw | johnson | boundary   (default auto)
//   --device D              v100 | k80                        (default v100)
//   --memory-mb M           device memory in MiB              (default 8 / 6)
//   --components K          boundary algorithm component count (0 = sqrt(n)/4)
//   --no-batching           disable boundary transfer batching
//   --no-overlap            disable compute/transfer overlap (all algorithms)
//   --transfer-compression M  auto | on | off: z1-compress staged tiles into
//                           the pinned lanes, decode on device (DESIGN.md
//                           §14). auto engages when the device's decode rate
//                           beats its host link; results are bit-identical
//                           in every mode (unknown names are an error)
//   --no-dp                 disable Johnson dynamic parallelism
//   --sparse-threshold P    selector sparse density band, percent (default 0.8)
//   --dense-threshold P     selector dense density band, percent  (default 4)
//   --store S               ram | file                        (default ram)
//   --store-path P          file-store path (default ./apsp_dist.bin)
//   --keep-store            keep the file store after exit; on completion it
//                           is compacted into a GAPSPZ1 block-compressed
//                           store (DESIGN.md §11) and a calibration sidecar
//                           (<store-path>.cal) is saved next to it
//   --no-compress-store     keep the raw file instead of compacting
//   --store-ratio R         expected compression ratio of the store sink;
//                           scales the n² output term of the cost models
//                           (selector sees cheaper I/O)   (default 1 = raw)
//   --sssp-kernel K         near-far | delta-stepping | bellman-ford
//   --partitioner P         kway | rb (recursive bisection)
//   --devices N             run the multi-GPU boundary algorithm on N devices
//   --verify                spot-check the result against Dijkstra rows
//   --per-component         decompose into connected components first
//   --save FILE             serialize the distance matrix (GAPSPDM1 format)
//   --query U,V             print dist(U,V)  (several: "U,V;U2,V2")
//   --path U,V              print one shortest path U -> V
//   --trace FILE            write a chrome://tracing JSON timeline
//   --stats                 print graph statistics and exit
//
// Kernel engine (see DESIGN.md §9):
//   --kernel-variant V      auto | naive | tiled | tiled-reg | simd | tensor
//                           min-plus microkernel (auto benchmarks once and
//                           caches; unknown names are an error)
//   --kernel-threads N      host threads for grid-parallel kernel execution
//                           (0 = whole pool, 1 = serial); never changes
//                           results or simulated time, only wall-clock
//
// Fault injection & recovery (see DESIGN.md §8):
//   --fault-seed S          fault schedule seed (default 1)
//   --fault-h2d P           probability an H2D transfer faults (transient)
//   --fault-d2h P           probability a D2H transfer faults (transient)
//   --fault-kernel P        probability a kernel launch faults (transient)
//   --fault-alloc P         probability an allocation faults (→ degrade)
//   --fault-decode P        probability an on-device z1 decode/encode faults
//                           (transient; the whole tile retries)
//   --kill-device D:N       device D dies at its N-th operation
//   --retries N             max retries per transient fault (default 3)
//   --checkpoint FILE       write a round-level checkpoint sidecar; requires
//                           --store file (the store holds the completed
//                           rounds, so it must outlive the process; the
//                           store file is kept across runs automatically)
//   --resume                resume from --checkpoint if compatible:
//
//   apsp_cli --generate road:20x20 --algorithm fw --store file \
//            --store-path d.bin --checkpoint fw.ck [--kill-device 0:40]
//   apsp_cli --generate road:20x20 --algorithm fw --store file \
//            --store-path d.bin --checkpoint fw.ck --resume
//
// Query service (see DESIGN.md §10): `apsp_cli query` opens a kept store —
// raw or GAPSPZ1 compressed, auto-detected — from a previous solve and
// serves point/row/batch queries through the block-cached query engine,
// printing cache and latency metrics:
//
//   apsp_cli --generate road:24x24 --store file --store-path d.bin --keep-store
//   apsp_cli query --store-path d.bin --point 0,100 --row 5
//   apsp_cli query --store-path d.bin --batch queries.txt --cache-mb 32
//
// Store compaction (see DESIGN.md §11): `apsp_cli compact` converts a raw
// kept store into a GAPSPZ1 block-compressed store (in place by default):
//
//   apsp_cli compact --store-path d.bin [--out d.z.bin] [--block 256]
//
// Query flags:
//   --store-path P          kept store file from `--keep-store` (required)
//   --point U,V             point queries (several: "U,V;U2,V2")
//   --row U                 row queries (several: "U;U2")
//   --batch FILE            one query per line: "U V" / "U,V" (point) or
//                           "row U"; '#' starts a comment
//   --cache-mb M            block cache capacity in MiB       (default 64)
//   --block B               cache tile side, elements         (default 256)
//   --shards S              cache shard count                 (default 8)
//   --threads T             batch fan-out threads (0 = whole pool)
//   --repeat N              run the batch N times (N >= 2 shows the
//                           warm-cache steady state; metrics per run)
//
// Serving-tier fault tolerance (see DESIGN.md §13): raw kept stores carry a
// GAPSPSM1 checksum sidecar (<store>.sum, written at --keep-store/scrub
// time) and every cache-miss read is verified against it; GAPSPZ1 stores
// verify their own frame checksums. Transient read faults retry with
// backoff; persistent damage quarantines the tile and degrades exactly the
// queries that touch it (typed per-query status) — or, with
// --repair recompute, the tile is re-derived from the graph on the spot.
//
//   --retries N             retry budget per transient read fault (default 3)
//   --max-queue N           admission bound per batch; overflow is shed with
//                           a typed status (0 = unbounded)
//   --no-verify-sums        skip sidecar verification on reads
//   --repair recompute      re-derive damaged tiles by SSSP over the input
//                           graph (give the same --generate/--input/--seed
//                           as the solve; identity-permutation solves only)
//   --fault-store-read P    inject transient store-read faults (chaos)
//   --fault-seed S          fault schedule seed (default 1)
//
// Sharded serving (see DESIGN.md §15): `apsp_cli shard` splits a kept store
// (raw or GAPSPZ1) into row-range shard files plus a GAPSPSH1 manifest;
// `query --route` serves all shards behind one batch surface, either with
// in-process engines (local) or one worker process per shard (process, the
// workers being `apsp_cli serve --shard K` children speaking a
// length-prefixed protocol on stdin/stdout). A dead or corrupt shard
// degrades exactly its row range to typed kQuarantined results:
//
//   apsp_cli shard --store-path d.bin --shards 4
//   apsp_cli query --store-path d.bin --route process --point 0,100 --row 5
//   apsp_cli query --store-path d.bin --shard 1 --row 300   (single slice)
//
//   --route M               none | local | process        (default none)
//   --shard K               serve one shard slice directly; every query must
//                           route inside its row range (contradiction = exit 1)
//   --worker-retries N      resend+respawn budget per dead worker (default 1)
//   --worker-timeout-ms T   per-reply wait before a worker counts as dead
//   --kill-worker K:N       chaos: worker K _exits on its N-th batch
//   --no-verify-shard       skip the whole-file shard checksum at open
//
// Scrub & repair (offline): `apsp_cli scrub` walks every tile of a kept
// store, reports corruption, optionally repairs it in place, and exits 3
// when unrepaired damage remains:
//
//   apsp_cli scrub --store-path d.bin
//   apsp_cli scrub --store-path d.bin --repair recompute --generate road:24x24
//   apsp_cli scrub --store-path d.bin --write-sums    (create/refresh sidecar)
//
// Dynamic updates (see DESIGN.md §16): `apsp_cli update` repairs a kept
// store in place after a batch of edge-weight updates, instead of
// re-solving. Decrease-only batches run a bounded min-plus panel repair;
// increases/deletes probe for damaged rows and recompute them by SSSP,
// falling back to a full re-solve past --update-threshold. The repair
// writes into a sibling tmp copy and atomically replaces the store, with a
// GAPSPCK1 delta sidecar (<store>.updck) making a killed update resumable
// bit-identically. Stale sidecars are fixed up: .sum refreshed, .cal and
// .shards removed. Pass the solve's exact --generate/--input/--seed
// (identity-permutation solves only, like --repair recompute):
//
//   apsp_cli update --store-path d.bin --updates batch.txt \
//            --generate road:24x24 [--update-threshold 0.5] [--resume]
//
//   --updates FILE          one `u v w` arc per line ('#' comments;
//                           w = inf | x | -1 deletes the arc; arcs absent
//                           from the graph are inserted; last update of an
//                           arc wins). Undirected graphs need both arcs.
//   --update-threshold F    fall back to a full re-solve when more than
//                           F*n rows are damaged by increases (default 1 =
//                           never: row repair is output-sensitive, so the
//                           damaged-row fraction does not predict its cost;
//                           0 = always re-solve)
//   --checkpoint FILE       delta sidecar path (default <store>.updck)
//   --checkpoint-every N    tiles between checkpoint rewrites (default 64)
//   --resume                continue a killed update (same store + batch)
//   --block B               repair tile side for raw stores (default 256;
//                           GAPSPZ1 stores always use their own tiling)
//   --save-graph FILE       write the post-update graph as Matrix Market,
//                           so a from-scratch `--input FILE` solve can
//                           cross-check the repaired store byte-for-byte
//
// `apsp_cli info` prints a kept store's format facts (raw / GAPSPZ1 /
// GAPSPSD1 shard slice, n, tile, compression ratio) and the health of every
// sidecar next to it (.sum / .cal / .shards / .updck):
//
//   apsp_cli info --store-path d.bin
//
// Query-mode vertex ids address the store's own layout; solves that permute
// (the boundary algorithm) should query through the API with ApspResult::
// perm, or save via --save which records the permutation.
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include <unistd.h>

#include "core/apsp.h"
#include "core/checkpoint.h"
#include "core/incremental.h"
#include "core/kernel_engine.h"
#include "core/component_solver.h"
#include "core/compressed_store.h"
#include "core/cost_model.h"
#include "core/dist_io.h"
#include "core/multi_device.h"
#include "core/path_extract.h"
#include "core/scrub.h"
#include "core/shard_store.h"
#include "core/store_integrity.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/matrix_market.h"
#include "partition/boundary.h"
#include "service/query_engine.h"
#include "service/shard_router.h"
#include "service/shard_worker.h"
#include "util/args.h"

namespace {

using namespace gapsp;

graph::CsrGraph make_graph(const Args& args) {
  if (const auto input = args.get("input"); input.has_value()) {
    return graph::read_matrix_market_file(*input);
  }
  const std::string spec = args.get_or("generate", "road:40x40");
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  std::istringstream ss(spec);
  std::string kind;
  GAPSP_CHECK(static_cast<bool>(std::getline(ss, kind, ':')),
              "bad --generate spec: " + spec);
  auto next_num = [&](char sep) {
    std::string tok;
    GAPSP_CHECK(static_cast<bool>(std::getline(ss, tok, sep)),
                "bad --generate spec: " + spec);
    return std::stoll(tok);
  };
  if (kind == "road") {
    const auto rows = next_num('x');
    const auto cols = next_num(':');
    return graph::make_road(static_cast<vidx_t>(rows),
                            static_cast<vidx_t>(cols), seed);
  }
  if (kind == "mesh") {
    const auto n = next_num(':');
    const auto deg = next_num(':');
    return graph::make_mesh(static_cast<vidx_t>(n), static_cast<int>(deg),
                            seed);
  }
  if (kind == "rmat") {
    const auto scale = next_num(':');
    const auto edges = next_num(':');
    return graph::make_rmat(static_cast<int>(scale), edges, seed);
  }
  if (kind == "er") {
    const auto n = next_num(':');
    const auto m = next_num(':');
    // Optional 4th field: er:N:M:0 skips the connecting spanning walk, so a
    // sub-critical M leaves many components (a kInf-dominated store).
    std::string tok;
    const bool connect =
        !std::getline(ss, tok, ':') || std::stoll(tok) != 0;
    return graph::make_erdos_renyi(static_cast<vidx_t>(n), m, seed, connect);
  }
  if (kind == "dense") {
    const auto n = next_num(':');
    const auto pct = next_num(':');
    return graph::make_dense(static_cast<vidx_t>(n),
                             static_cast<double>(pct), seed);
  }
  throw Error("unknown generator kind: " + kind);
}

core::Algorithm parse_algorithm(const std::string& name) {
  if (name == "auto") return core::Algorithm::kAuto;
  if (name == "fw") return core::Algorithm::kBlockedFloydWarshall;
  if (name == "johnson") return core::Algorithm::kJohnson;
  if (name == "boundary") return core::Algorithm::kBoundary;
  throw Error("unknown --algorithm: " + name);
}

std::pair<vidx_t, vidx_t> parse_pair(const std::string& s) {
  const auto comma = s.find(',');
  GAPSP_CHECK(comma != std::string::npos, "expected U,V but got " + s);
  return {static_cast<vidx_t>(std::stoll(s.substr(0, comma))),
          static_cast<vidx_t>(std::stoll(s.substr(comma + 1)))};
}

std::string us(double seconds) {
  std::ostringstream os;
  os << seconds * 1e6 << "us";
  return os.str();
}

/// Builds the SSSP repair source for --repair recompute: the same graph the
/// solve ran on, re-made from --generate/--input/--seed. Identity
/// permutation only (fw/johnson solves); the kept graph outlives the fn via
/// the shared_ptr capture.
core::TileRepairFn make_repair_source(const Args& args) {
  const std::string mode = args.get_or("repair", "off");
  if (mode == "off") return {};
  GAPSP_CHECK(mode == "recompute", "unknown --repair mode: " + mode);
  GAPSP_CHECK(args.has("generate") || args.has("input"),
              "--repair recompute re-derives tiles from the input graph: "
              "pass the solve's --generate/--input (and --seed)");
  auto g = std::make_shared<graph::CsrGraph>(make_graph(args));
  core::TileRepairFn fn = core::make_sssp_repair(*g);
  return [g, fn](vidx_t row0, vidx_t col0, vidx_t rows, vidx_t cols) {
    return fn(row0, col0, rows, cols);
  };
}

service::QueryEngineOptions engine_options_from_flags(const Args& args) {
  service::QueryEngineOptions qopt;
  qopt.cache_bytes =
      static_cast<std::size_t>(args.get_int_or("cache-mb", 64)) << 20;
  qopt.block_size = static_cast<vidx_t>(args.get_int_or("block", 256));
  qopt.cache_shards = static_cast<int>(args.get_int_or("shards", 8));
  qopt.max_threads = static_cast<int>(args.get_int_or("threads", 0));
  qopt.retry.max_retries = static_cast<int>(args.get_int_or("retries", 3));
  qopt.max_queue = static_cast<std::size_t>(args.get_int_or("max-queue", 0));
  qopt.verify_checksums = !args.has("no-verify-sums");
  return qopt;
}

struct ParsedQueries {
  std::vector<service::Query> queries;
  std::size_t inline_queries = 0;  // from --point/--row: echo each result
};

ParsedQueries parse_queries(const Args& args) {
  ParsedQueries out;
  auto& queries = out.queries;
  if (const auto p = args.get("point"); p.has_value()) {
    std::istringstream ss(*p);
    std::string item;
    while (std::getline(ss, item, ';')) {
      const auto [u, v] = parse_pair(item);
      queries.push_back({service::QueryKind::kPoint, u, v});
    }
    out.inline_queries = queries.size();
  }
  if (const auto rws = args.get("row"); rws.has_value()) {
    std::istringstream ss(*rws);
    std::string item;
    while (std::getline(ss, item, ';')) {
      queries.push_back({service::QueryKind::kRow,
                         static_cast<vidx_t>(std::stoll(item)), 0});
    }
    out.inline_queries = queries.size();
  }
  if (const auto batch = args.get("batch"); batch.has_value()) {
    std::ifstream in(*batch);
    GAPSP_CHECK(in.good(), "cannot open batch file " + *batch);
    std::string line;
    while (std::getline(in, line)) {
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      std::istringstream ls(line.substr(first));
      std::string tok;
      ls >> tok;
      if (tok == "row") {
        long long u = 0;
        GAPSP_CHECK(static_cast<bool>(ls >> u), "bad batch line: " + line);
        queries.push_back(
            {service::QueryKind::kRow, static_cast<vidx_t>(u), 0});
      } else if (tok.find(',') != std::string::npos) {
        const auto [u, v] = parse_pair(tok);
        queries.push_back({service::QueryKind::kPoint, u, v});
      } else {
        long long v = 0;
        GAPSP_CHECK(static_cast<bool>(ls >> v), "bad batch line: " + line);
        queries.push_back({service::QueryKind::kPoint,
                           static_cast<vidx_t>(std::stoll(tok)),
                           static_cast<vidx_t>(v)});
      }
    }
  }
  GAPSP_CHECK(!queries.empty(),
              "nothing to serve: give --point, --row, or --batch");
  return out;
}

void print_inline_results(const service::BatchReport& report,
                          std::size_t inline_queries, vidx_t n) {
  for (std::size_t i = 0; i < inline_queries; ++i) {
    const auto& r = report.results[i];
    if (r.status != service::QueryStatus::kOk) {
      std::cout << (r.query.kind == service::QueryKind::kPoint
                        ? "dist(" + std::to_string(r.query.u) + ", " +
                              std::to_string(r.query.v) + ")"
                        : "row " + std::to_string(r.query.u))
                << " = <" << service::query_status_name(r.status) << ": "
                << r.error << ">\n";
      continue;
    }
    if (r.query.kind == service::QueryKind::kPoint) {
      std::cout << "dist(" << r.query.u << ", " << r.query.v << ") = ";
      if (r.dist >= kInf) {
        std::cout << "unreachable\n";
      } else {
        std::cout << r.dist << "\n";
      }
    } else {
      vidx_t reachable = 0;
      dist_t far = 0;
      for (dist_t d : r.row) {
        if (d < kInf) {
          ++reachable;
          far = std::max(far, d);
        }
      }
      std::cout << "row " << r.query.u << ": " << reachable << "/" << n
                << " reachable, eccentricity " << far << "\n";
    }
  }
}

void print_batch_summary(const service::BatchReport& report) {
  const auto& cs = report.cache;
  std::cout << "batch: " << report.results.size() << " queries in "
            << report.wall_seconds * 1e3 << " ms ("
            << static_cast<long long>(report.qps) << " qps)\n"
            << "latency: mean " << us(report.latency.mean_s) << ", p50 "
            << us(report.latency.p50_s) << ", p95 " << us(report.latency.p95_s)
            << ", max " << us(report.latency.max_s) << "\n"
            << "cache: " << cs.hits << " hits, " << cs.misses << " misses ("
            << cs.hit_rate() * 100.0 << "% hit rate), " << cs.evictions
            << " evictions, " << cs.negative_loads
            << " all-kInf tiles at zero cost, " << (cs.bytes_cached >> 10)
            << " KiB of " << (cs.capacity_bytes >> 10) << " KiB used\n";
  const auto& sv = report.service;
  std::cout << "service: " << sv.served << " served, " << sv.degraded
            << " degraded, " << sv.shed << " shed, " << sv.repaired
            << " repaired; " << sv.retries << " retried, "
            << sv.transient_failures << " transient-failed, "
            << sv.corrupt_tiles << " corrupt, " << cs.quarantined_tiles
            << " quarantined\n";
}

core::ShardManifest require_manifest(const std::string& path) {
  core::ShardManifest manifest;
  if (!core::load_shard_manifest(core::shard_manifest_path(path), manifest)) {
    throw Error("no shard manifest next to " + path +
                " — run `apsp_cli shard --store-path " + path +
                " --shards N` first");
  }
  return manifest;
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  GAPSP_CHECK(len > 0, "cannot resolve /proc/self/exe");
  return std::string(buf, static_cast<std::size_t>(len));
}

/// `query --shard K`: serve one shard slice directly (no router). Queries
/// routing outside the shard's rows are a usage error — the slice cannot
/// answer them, and silently returning kInf would look like "unreachable".
int run_query_shard_slice(const Args& args, const std::string& path) {
  const auto manifest = require_manifest(path);
  const int k = static_cast<int>(args.get_int_or("shard", 0));
  GAPSP_CHECK(k >= 0 && k < manifest.num_shards(),
              "--shard " + std::to_string(k) + " out of range [0, " +
                  std::to_string(manifest.num_shards()) + ")");
  const auto& range = manifest.shards[static_cast<std::size_t>(k)];
  const auto slice = core::open_shard_slice(path, manifest, k);
  const auto qopt = engine_options_from_flags(args);
  const service::QueryEngine engine(*slice, qopt);

  std::cout << "store: " << path << " shard " << k << "/"
            << manifest.num_shards() << " (rows [" << range.row_begin << ", "
            << range.row_end << ") of n=" << manifest.n << ", "
            << (manifest.compressed ? "GAPSPZ1" : "raw") << " slice, tile "
            << manifest.tile << ")\n";

  auto pq = parse_queries(args);
  for (const auto& q : pq.queries) {
    // Typed exit-1 path: a query this slice cannot own is a flag
    // contradiction, not an "unreachable" answer.
    GAPSP_CHECK(
        q.u >= range.row_begin && q.u < range.row_end,
        (q.kind == service::QueryKind::kPoint ? "--point " : "--row ") +
            std::to_string(q.u) + " routes outside --shard " +
            std::to_string(k) + " rows [" + std::to_string(range.row_begin) +
            ", " + std::to_string(range.row_end) +
            "); drop --shard or use --route local/process");
  }

  const auto repeat = std::max<long long>(1, args.get_int_or("repeat", 1));
  auto report = engine.run_batch(pq.queries);
  for (long long rep = 1; rep < repeat; ++rep) {
    report = engine.run_batch(pq.queries);
  }
  print_inline_results(report, pq.inline_queries, manifest.n);
  print_batch_summary(report);
  return 0;
}

/// `query --route local|process`: a ShardRouter over every shard, either
/// in-process engines or one worker process per shard.
int run_query_routed(const Args& args, const std::string& path,
                     const std::string& route) {
  const auto manifest = require_manifest(path);
  const int shards = manifest.num_shards();

  // One logical cache budget, split across the shard engines like the
  // single-engine path would spend it (floor 1 MiB per shard).
  const auto cache_mb =
      std::max<long long>(1, args.get_int_or("cache-mb", 64));
  const auto per_shard_mb = std::max<long long>(1, cache_mb / shards);

  service::ShardRouterOptions ropt;
  ropt.max_queue = static_cast<std::size_t>(args.get_int_or("max-queue", 0));

  int kill_shard = -1;
  long long kill_at = 0;
  if (const auto kill = args.get("kill-worker"); kill.has_value()) {
    const auto colon = kill->find(':');
    GAPSP_CHECK(colon != std::string::npos,
                "expected --kill-worker SHARD:NTHBATCH but got " + *kill);
    kill_shard = static_cast<int>(std::stoll(kill->substr(0, colon)));
    kill_at = std::stoll(kill->substr(colon + 1));
    GAPSP_CHECK(kill_shard >= 0 && kill_shard < shards,
                "--kill-worker shard " + std::to_string(kill_shard) +
                    " out of range [0, " + std::to_string(shards) + ")");
    GAPSP_CHECK(kill_at >= 1, "--kill-worker batch index must be >= 1");
  }

  std::vector<std::unique_ptr<service::ShardBackend>> backends;
  if (route == "local") {
    auto qopt = engine_options_from_flags(args);
    qopt.cache_bytes =
        static_cast<std::size_t>(per_shard_mb) << 20;
    qopt.max_queue = 0;  // the router sheds; engines see bounded sub-batches
    backends = service::make_local_backends(path, manifest, qopt);
  } else {
    service::ProcessBackendOptions popt;
    popt.retries = static_cast<int>(args.get_int_or("worker-retries", 1));
    popt.timeout_ms =
        static_cast<int>(args.get_int_or("worker-timeout-ms", 30000));
    const std::string exe = self_exe_path();
    for (int k = 0; k < shards; ++k) {
      std::vector<std::string> extra = {
          "--cache-mb", std::to_string(per_shard_mb),
          "--shards", std::to_string(args.get_int_or("shards", 8)),
          "--retries", std::to_string(args.get_int_or("retries", 3))};
      if (args.has("no-verify-shard")) extra.push_back("--no-verify-shard");
      if (k == kill_shard) {
        extra.push_back("--exit-after");
        extra.push_back(std::to_string(kill_at));
      }
      backends.push_back(service::make_process_backend(
          service::make_cli_worker_spawner(exe, path, std::move(extra)), k,
          manifest, popt));
    }
  }
  service::ShardRouter router(manifest, std::move(backends), ropt);

  std::cout << "store: " << path << " (n=" << manifest.n << ", " << shards
            << " shards, tile " << manifest.tile << ", "
            << (manifest.compressed ? "GAPSPZ1" : "raw") << " slices)\n"
            << "route: " << route << ", cache " << cache_mb
            << " MiB split as " << per_shard_mb << " MiB/shard";
  if (route == "process") {
    std::cout << ", worker retries " << args.get_int_or("worker-retries", 1)
              << ", timeout " << args.get_int_or("worker-timeout-ms", 30000)
              << " ms";
  }
  if (ropt.max_queue > 0) std::cout << ", max-queue " << ropt.max_queue;
  if (kill_shard >= 0) {
    std::cout << ", killing worker " << kill_shard << " at batch " << kill_at;
  }
  std::cout << "\n";

  auto pq = parse_queries(args);
  const auto repeat = std::max<long long>(1, args.get_int_or("repeat", 1));
  auto report = router.run_batch(pq.queries);
  for (long long rep = 1; rep < repeat; ++rep) {
    report = router.run_batch(pq.queries);
  }
  print_inline_results(report, pq.inline_queries, manifest.n);
  print_batch_summary(report);
  return 0;
}

int run_query(const Args& args) {
  const std::string path = args.get_or("store-path", "apsp_dist.bin");

  // Serving-topology flags first — contradictions are typed usage errors
  // (exit 1), caught before any store is opened.
  const std::string route = args.get_or("route", "none");
  GAPSP_CHECK(route == "none" || route == "local" || route == "process",
              "unknown --route: " + route + " (none | local | process)");
  const bool routed = route != "none";
  GAPSP_CHECK(!(args.has("shard") && routed),
              "--shard serves a single slice; it contradicts --route " +
                  route + " (the router already reaches every shard)");
  GAPSP_CHECK(!args.has("kill-worker") || route == "process",
              "--kill-worker kills a worker process; it needs --route "
              "process");
  GAPSP_CHECK(!(routed && args.get_or("repair", "off") != "off"),
              "--repair recompute cannot cross the worker boundary; serve "
              "unrouted or repair offline with `apsp_cli scrub`");
  GAPSP_CHECK(!(routed && args.get_double_or("fault-store-read", 0.0) > 0.0),
              "--fault-store-read injects into a single engine; chaos for "
              "routed serving is --kill-worker");
  GAPSP_CHECK(!args.has("no-verify-shard") || routed || args.has("shard"),
              "--no-verify-shard only applies to shard serving (--shard or "
              "--route)");

  if (routed) return run_query_routed(args, path, route);
  if (args.has("shard")) return run_query_shard_slice(args, path);

  const auto store = core::open_store(path);  // raw or GAPSPZ1, auto-detected

  auto qopt = engine_options_from_flags(args);
  // Raw stores verify against the GAPSPSM1 sidecar when one sits next to
  // the store; GAPSPZ1 frames are self-checksummed.
  if (store->tile_size() == 0) {
    core::load_store_checksums(core::checksum_sidecar_path(path),
                               qopt.checksums);
  }
  qopt.repair = make_repair_source(args);

  sim::FaultPlan chaos;
  chaos.seed = static_cast<std::uint64_t>(args.get_int_or("fault-seed", 1));
  chaos.p_store_read = args.get_double_or("fault-store-read", 0.0);
  sim::FaultInjector chaos_injector(chaos);
  if (chaos.p_store_read > 0.0) qopt.faults = &chaos_injector;

  const bool verified = qopt.verify_checksums && qopt.checksums.present();
  const service::QueryEngine engine(*store, qopt);
  std::cout << "store: " << path << " (n=" << store->n() << ", "
            << (static_cast<std::uint64_t>(store->n()) * store->n() *
                sizeof(dist_t) >> 10)
            << " KiB";
  if (store->tile_size() > 0) {
    const auto info = core::compressed_store_info(path);
    std::cout << " raw; compressed to " << (info.file_bytes >> 10) << " KiB, "
              << static_cast<double>(info.raw_bytes) /
                     static_cast<double>(info.file_bytes)
              << "x, " << info.inf_tiles << "/" << info.tiles
              << " all-kInf tiles";
  }
  std::cout << ")\ncache: " << (qopt.cache_bytes >> 20) << " MiB in "
            << qopt.cache_shards << " shards, "
            << (store->tile_size() > 0 ? store->tile_size() : qopt.block_size)
            << "-wide blocks\n"
            << "integrity: "
            << (store->tile_size() > 0 ? "GAPSPZ1 frame checksums"
                : verified             ? "GAPSPSM1 sidecar verification"
                                       : "off (no sidecar)")
            << ", " << qopt.retry.max_retries << " retries"
            << (qopt.repair ? ", repair=recompute" : "");
  if (qopt.max_queue > 0) std::cout << ", max-queue " << qopt.max_queue;
  if (chaos.p_store_read > 0.0) {
    std::cout << ", injecting store-read faults p=" << chaos.p_store_read;
  }
  std::cout << "\n";

  auto pq = parse_queries(args);
  const auto repeat = std::max<long long>(1, args.get_int_or("repeat", 1));
  auto report = engine.run_batch(pq.queries);
  for (long long rep = 1; rep < repeat; ++rep) {
    report = engine.run_batch(pq.queries);  // cache counters accumulate
  }
  print_inline_results(report, pq.inline_queries, store->n());
  print_batch_summary(report);
  // Degradation is visible but non-fatal: every query got a typed answer.
  return 0;
}

/// `apsp_cli shard`: slice a kept store into row-range shard files plus the
/// GAPSPSH1 manifest, next to the store.
int run_shard(const Args& args) {
  const std::string path = args.get_or("store-path", "apsp_dist.bin");
  const int num = static_cast<int>(args.get_int_or("shards", 2));
  const auto tile = static_cast<vidx_t>(args.get_int_or("block", 256));
  core::ShardingStats stats;
  const auto m = core::shard_store_file(path, num, tile, &stats);
  std::cout << "sharded: " << path << " -> " << m.num_shards() << " shards ("
            << (m.compressed ? "GAPSPZ1" : "raw") << ", n=" << m.n
            << ", tile " << m.tile << ", " << (stats.bytes_written >> 10)
            << " KiB) in " << stats.seconds * 1e3 << " ms\n";
  for (int k = 0; k < m.num_shards(); ++k) {
    const auto& r = m.shards[static_cast<std::size_t>(k)];
    std::cout << "  shard " << k << ": rows [" << r.row_begin << ", "
              << r.row_end << "), " << (r.bytes >> 10) << " KiB -> "
              << core::shard_file_path(path, k) << "\n";
  }
  std::cout << "manifest: " << core::shard_manifest_path(path) << "\n"
            << "serve it with: apsp_cli query --store-path " << path
            << " --route process ...\n";
  return 0;
}

/// `apsp_cli serve --shard K`: one shard worker speaking the wire protocol
/// on stdin/stdout (spawned by the router; logs go to stderr).
int run_serve(const Args& args) {
  GAPSP_CHECK(args.has("shard"),
              "serve needs --shard K — it serves exactly one shard slice "
              "behind the wire protocol (the router spawns one per shard)");
  const std::string path = args.get_or("store-path", "apsp_dist.bin");
  const int shard = static_cast<int>(args.get_int_or("shard", 0));
  service::ShardWorkerOptions wopt;
  wopt.engine = engine_options_from_flags(args);
  wopt.engine.max_queue = 0;  // the router is the single admission point
  wopt.verify_shard = !args.has("no-verify-shard");
  wopt.exit_after = static_cast<int>(args.get_int_or("exit-after", 0));
  return service::run_shard_worker(path, shard, wopt, STDIN_FILENO,
                                   STDOUT_FILENO);
}

int run_scrub(const Args& args) {
  const std::string path = args.get_or("store-path", "apsp_dist.bin");
  core::ScrubOptions sopt;
  sopt.retry.max_retries = static_cast<int>(args.get_int_or("retries", 3));
  sopt.write_sums = args.has("write-sums");
  sopt.tile = static_cast<vidx_t>(args.get_int_or("block", 256));
  sopt.repair_fn = make_repair_source(args);
  sopt.repair = static_cast<bool>(sopt.repair_fn);

  sim::FaultPlan chaos;
  chaos.seed = static_cast<std::uint64_t>(args.get_int_or("fault-seed", 1));
  chaos.p_store_read = args.get_double_or("fault-store-read", 0.0);
  sim::FaultInjector chaos_injector(chaos);
  if (chaos.p_store_read > 0.0) sopt.faults = &chaos_injector;

  const auto report = core::scrub_store(path, sopt);
  std::cout << "scrub: " << path << " ("
            << (report.compressed ? "GAPSPZ1" : "raw") << ", n=" << report.n
            << ", tile=" << report.tile << ", " << report.tiles
            << " tiles)\n";
  if (!report.compressed) {
    std::cout << "sidecar: "
              << (report.sums_written   ? "written"
                  : report.sums_present ? "present"
                                        : "absent (checks limited to "
                                          "readability; --write-sums to add)")
              << "\n";
  }
  std::cout << "damage: " << report.corrupt << " corrupt, " << report.repaired
            << " repaired, " << report.unrepaired << " unrepaired\n";
  for (const auto& t : report.damaged) {
    std::cout << "  tile (" << t.row_block << "," << t.col_block << ") "
              << (t.repaired ? "[repaired] " : "") << t.reason << "\n";
  }
  if (report.ok()) {
    std::cout << "result: " << (report.clean() ? "CLEAN" : "REPAIRED") << "\n";
    return 0;
  }
  std::cout << "result: DAMAGED (serve at your own risk, or repair with "
               "--repair recompute --generate/--input ...)\n";
  return 3;
}

int run_compact(const Args& args) {
  const std::string in = args.get_or("store-path", "apsp_dist.bin");
  const std::string out = args.get_or("out", in);
  const auto tile = static_cast<vidx_t>(args.get_int_or("block", 256));
  const auto cs = core::compact_store(in, out, tile);
  // GAPSPZ1 frames are self-checksummed; a raw-era sidecar would go stale.
  std::remove(core::checksum_sidecar_path(out).c_str());
  std::cout << "compacted: " << in << " -> " << out << "\n"
            << "store compressed: " << (cs.raw_bytes >> 10) << " KiB -> "
            << (cs.compressed_bytes >> 10) << " KiB (" << cs.ratio() << "x, "
            << cs.inf_tiles << "/" << cs.tiles << " all-kInf tiles) in "
            << cs.seconds * 1e3 << " ms\n"
            << "serve it with: apsp_cli query --store-path " << out << "\n";
  return 0;
}

/// Bytes of the file at `path`, or 0 when missing/unreadable.
std::uint64_t file_size_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::uint64_t bytes = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long long end = std::ftell(f);
    if (end > 0) bytes = static_cast<std::uint64_t>(end);
  }
  std::fclose(f);
  return bytes;
}

/// First `len` bytes of `path` (shorter when the file is), for magic sniffs.
std::string file_magic(const std::string& path, std::size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string magic(len, '\0');
  magic.resize(std::fread(magic.data(), 1, len, f));
  std::fclose(f);
  return magic;
}

/// Removes every shard sidecar of `path` (manifest + shard files), because
/// the bytes they slice are about to change. Tolerates a corrupt manifest:
/// the files are removed by probing, not by trusting its count.
void remove_shard_sidecars(const std::string& path) {
  const std::string manifest = core::shard_manifest_path(path);
  if (file_size_bytes(manifest) == 0) return;
  for (int k = 0;; ++k) {
    if (std::remove(core::shard_file_path(path, k).c_str()) != 0) break;
  }
  std::remove(manifest.c_str());
}

/// `apsp_cli update`: delta-repair a kept store after a batch of edge-weight
/// updates instead of re-solving (DESIGN.md §16). The repair writes into a
/// sibling tmp copy and atomically replaces the store only when complete, so
/// a kill mid-update leaves the pristine matrix plus a GAPSPCK1 delta
/// sidecar that --resume continues bit-identically. Sidecars derived from
/// the old bytes (.cal, .shards) are invalidated; a .sum sidecar is
/// refreshed in place.
int run_update(const Args& args) {
  const std::string path = args.get_or("store-path", "apsp_dist.bin");
  const auto upath = args.get("updates");
  GAPSP_CHECK(upath.has_value(),
              "update needs --updates FILE (one `u v w` arc per line; w = "
              "inf/x/-1 deletes) plus the solve's --generate/--input/--seed");
  const graph::CsrGraph g = make_graph(args);
  const auto updates = core::read_edge_updates(*upath);

  auto pristine = core::open_store(path);  // raw or GAPSPZ1, auto-detected
  const vidx_t n = pristine->n();
  GAPSP_CHECK(
      n == g.num_vertices(),
      "store " + path + " holds n=" + std::to_string(n) +
          " but the graph has n=" + std::to_string(g.num_vertices()) +
          " — pass the exact --generate/--input/--seed the solve used");
  const bool compressed = pristine->tile_size() > 0;

  core::IncrementalOptions opt;
  opt.damage_threshold = args.get_double_or(
      "update-threshold", core::IncrementalOptions{}.damage_threshold);
  opt.tile = compressed ? pristine->tile_size()
                        : static_cast<vidx_t>(args.get_int_or("block", 256));
  opt.checkpoint_path = args.get_or("checkpoint", path + ".updck");
  opt.resume = args.has("resume");
  opt.checkpoint_every_tiles = args.get_int_or("checkpoint-every", 64);

  // The repair lands in a raw sibling copy; the pristine store — which a
  // resumed run must re-read byte-identically — is replaced only by the
  // final rename/compaction.
  const std::string tmp = path + ".upd.tmp";
  const std::uint64_t raw_bytes = static_cast<std::uint64_t>(n) *
                                  static_cast<std::uint64_t>(n) *
                                  sizeof(dist_t);
  bool fresh_copy = true;
  if (opt.resume) {
    core::Checkpoint ck;
    if (core::read_checkpoint(opt.checkpoint_path, &ck) &&
        ck.fingerprint == core::incremental_fingerprint(
                              g, updates, opt.tile, opt.damage_threshold) &&
        file_size_bytes(tmp) == raw_bytes) {
      // The tmp copy already holds every tile the dead run emitted;
      // re-copying the pristine matrix would silently undo them.
      fresh_copy = false;
    }
  }
  auto target = core::make_file_store(n, tmp, /*keep_file=*/true);
  if (fresh_copy) {
    const vidx_t strip = std::min<vidx_t>(n, 256);
    std::vector<dist_t> buf(static_cast<std::size_t>(strip) *
                            static_cast<std::size_t>(n));
    for (vidx_t r0 = 0; r0 < n; r0 += strip) {
      const vidx_t rows = std::min(strip, n - r0);
      pristine->read_block(r0, 0, rows, n, buf.data(),
                           static_cast<std::size_t>(n));
      target->write_block(r0, 0, rows, n, buf.data(),
                          static_cast<std::size_t>(n));
    }
  } else {
    std::cout << "resume: continuing into " << tmp << " from "
              << opt.checkpoint_path << "\n";
  }

  // Checkpoint durability: the tmp copy's stdio buffers must land before a
  // checkpoint claims their tiles, or a SIGKILL resume would skip tiles
  // that never reached disk.
  opt.sync_before_checkpoint = [&target] { target->flush(); };

  core::IncrementalEngine engine(g, opt);
  const core::UpdateOutcome out = engine.apply(
      *pristine, updates,
      [&](vidx_t, vidx_t, vidx_t r0, vidx_t c0, vidx_t rows, vidx_t cols,
          const dist_t* data) {
        target->write_block(r0, c0, rows, cols, data,
                            static_cast<std::size_t>(cols));
      });

  // Swap the repaired matrix in and fix up every sidecar derived from the
  // old bytes (the invalidation matrix in DESIGN.md §16).
  target.reset();
  pristine.reset();
  if (compressed) {
    core::compact_store(tmp, path, opt.tile);  // atomic tmp+rename inside
    std::remove(tmp.c_str());
    // GAPSPZ1 frames are self-checksummed; a raw-era sidecar would go stale.
    std::remove(core::checksum_sidecar_path(path).c_str());
  } else {
    GAPSP_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename " + tmp + " over " + path);
    // Refresh the checksum sidecar when the store carries one.
    core::StoreChecksums sums;
    if (core::load_store_checksums(core::checksum_sidecar_path(path), sums)) {
      auto repaired = core::open_file_store(path);
      const auto fresh = core::compute_store_checksums(*repaired, sums.tile);
      core::write_store_checksums(fresh, core::checksum_sidecar_path(path));
      std::cout << "sidecar: refreshed " << core::checksum_sidecar_path(path)
                << "\n";
    }
  }
  if (std::remove((path + ".cal").c_str()) == 0) {
    std::cout << "sidecar: invalidated " << path << ".cal (calibration was "
              << "fit against the old store)\n";
  }
  if (file_size_bytes(core::shard_manifest_path(path)) > 0) {
    remove_shard_sidecars(path);
    std::cout << "sidecar: invalidated " << core::shard_manifest_path(path)
              << " + shard files (re-shard with `apsp_cli shard`)\n";
  }

  std::cout << "update: " << path << " (n=" << n << ", "
            << (compressed ? "GAPSPZ1" : "raw") << ", tile " << opt.tile
            << ")\n"
            << "batch: " << updates.size() << " updates -> " << out.decreases
            << " decreases, " << out.increases << " increases, " << out.noops
            << " noops\n";
  if (out.full_solve) {
    std::cout << "mode: full re-solve (" << out.damaged_rows << "/" << n
              << " rows damaged > threshold "
              << opt.damage_threshold << ")\n";
  } else {
    std::cout << "mode: delta repair (" << out.damaged_rows
              << " damaged rows, " << out.sources << " seed sources, AR "
              << out.affected_rows << " x AC " << out.affected_cols << ")\n";
  }
  std::cout << "tiles: " << out.tiles_touched << " changed of "
            << out.tiles_candidate << " candidates / " << out.tiles_total
            << " total";
  if (out.tiles_resumed > 0) {
    std::cout << " (" << out.tiles_resumed << " resumed from checkpoint)";
  }
  std::cout << "\ntime: " << out.seconds * 1e3 << " ms (probe "
            << out.probe_seconds * 1e3 << ", sssp " << out.sssp_seconds * 1e3
            << ", panels " << out.panel_seconds * 1e3 << ", tiles "
            << out.tile_seconds * 1e3 << ")\n"
            << "modeled: repair " << out.modeled_repair_seconds
            << " s vs full re-solve " << out.modeled_full_seconds << " s ("
            << out.modeled_full_seconds /
                   std::max(out.modeled_repair_seconds, 1e-12)
            << "x)\n";
  if (const auto gpath = args.get("save-graph")) {
    graph::write_matrix_market_file(engine.updated_graph(), *gpath);
    std::cout << "graph: wrote updated graph to " << *gpath
              << " (solve it fresh via --input to cross-check the repair)\n";
  }
  return 0;
}

/// `apsp_cli info`: describe a kept store and the health of its sidecars
/// without serving or mutating anything.
int run_info(const Args& args) {
  const std::string path = args.get_or("store-path", "apsp_dist.bin");
  if (file_size_bytes(path) == 0) {
    throw IoError("no store at " + path);
  }
  std::cout << "store: " << path << " (" << (file_size_bytes(path) >> 10)
            << " KiB)\n";
  vidx_t n = 0;
  if (core::is_compressed_store(path)) {
    const auto info = core::compressed_store_info(path);
    n = info.n;
    std::cout << "format: GAPSPZ1 block-compressed\n"
              << "n: " << info.n << "\ntile: " << info.tile << " ("
              << info.tiles_per_side << " per side, " << info.inf_tiles << "/"
              << info.tiles << " all-kInf)\n"
              << "compression: " << (info.raw_bytes >> 10) << " KiB raw -> "
              << (info.file_bytes >> 10) << " KiB ("
              << static_cast<double>(info.raw_bytes) /
                     static_cast<double>(info.file_bytes)
              << "x)\n";
  } else if (file_magic(path, 8) == "GAPSPSD1") {
    std::cout << "format: GAPSPSD1 shard slice (one row range of a sharded "
              << "store; `info` on the parent store reads the manifest)\n";
    return 0;
  } else {
    const auto store = core::open_file_store(path);  // throws if not square
    n = store->n();
    std::cout << "format: raw row-major dist_t matrix\nn: " << n << "\n";
  }

  // ---- sidecar health ---------------------------------------------------
  const std::string sum_path = core::checksum_sidecar_path(path);
  if (file_size_bytes(sum_path) == 0) {
    std::cout << "checksums: absent (" << sum_path << ")\n";
  } else {
    try {
      core::StoreChecksums sums;
      core::load_store_checksums(sum_path, sums);
      std::cout << "checksums: present (" << sum_path << ", tile "
                << sums.tile << ", " << sums.sums.size() << " tiles"
                << (sums.n == n ? "" : ", STALE: n mismatch") << ")\n";
    } catch (const Error& e) {
      std::cout << "checksums: INVALID (" << sum_path << ": " << e.what()
                << ")\n";
    }
  }
  const std::string cal_path = path + ".cal";
  if (file_size_bytes(cal_path) == 0) {
    std::cout << "calibration: absent (" << cal_path << ")\n";
  } else {
    std::cout << "calibration: "
              << (file_magic(cal_path, 9) == "GAPSPCAL1" ? "present"
                                                         : "INVALID (bad "
                                                           "magic)")
              << " (" << cal_path << ")\n";
  }
  const std::string manifest_path = core::shard_manifest_path(path);
  if (file_size_bytes(manifest_path) == 0) {
    std::cout << "shards: absent (" << manifest_path << ")\n";
  } else {
    try {
      core::ShardManifest m;
      core::load_shard_manifest(manifest_path, m);
      int missing = 0;
      for (int k = 0; k < m.num_shards(); ++k) {
        if (file_size_bytes(core::shard_file_path(path, k)) !=
            m.shards[static_cast<std::size_t>(k)].bytes) {
          ++missing;
        }
      }
      std::cout << "shards: " << m.num_shards() << " ("
                << (m.compressed ? "GAPSPZ1" : "raw") << " payloads, tile "
                << m.tile << ")";
      if (missing > 0) {
        std::cout << " — " << missing << " shard file(s) missing or resized";
      }
      std::cout << "\n";
    } catch (const Error& e) {
      std::cout << "shards: INVALID (" << manifest_path << ": " << e.what()
                << ")\n";
    }
  }
  core::Checkpoint ck;
  if (core::read_checkpoint(path + ".updck", &ck)) {
    std::cout << "delta checkpoint: present (" << path << ".updck, "
              << ck.progress
              << " tiles done — an `apsp_cli update` died mid-repair; rerun "
              << "it with --resume)\n";
  }
  return 0;
}

int run(const Args& args) {
  const graph::CsrGraph g = make_graph(args);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " density=" << g.density_percent() << "%\n";

  if (args.has("stats")) {
    const auto deg = graph::degree_stats(g);
    std::cout << "degree: min=" << deg.min << " max=" << deg.max
              << " mean=" << deg.mean << "\n"
              << "components: " << graph::count_components(g) << "\n"
              << "separator ratio (#boundary / n^0.75): "
              << part::separator_ratio(g)
              << (part::has_small_separator(g) ? "  [small separator]\n"
                                               : "  [large separator]\n");
    return 0;
  }

  core::ApspOptions opts;
  const std::string device = args.get_or("device", "v100");
  if (device == "v100") {
    opts.device = sim::DeviceSpec::v100_scaled(
        static_cast<std::size_t>(args.get_int_or("memory-mb", 8)) << 20);
  } else if (device == "k80") {
    opts.device = sim::DeviceSpec::k80_scaled(
        static_cast<std::size_t>(args.get_int_or("memory-mb", 6)) << 20);
  } else {
    throw Error("unknown --device: " + device);
  }
  opts.algorithm = parse_algorithm(args.get_or("algorithm", "auto"));
  opts.num_components =
      static_cast<int>(args.get_int_or("components", 0));
  opts.batch_transfers = !args.has("no-batching");
  opts.overlap_transfers = !args.has("no-overlap");
  opts.transfer_compression = core::parse_transfer_compression(
      args.get_or("transfer-compression", "auto"));
  opts.dynamic_parallelism = !args.has("no-dp");
  opts.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const std::string kernel = args.get_or("sssp-kernel", "near-far");
  if (kernel == "near-far") {
    opts.sssp_kernel = core::SsspKernel::kNearFar;
  } else if (kernel == "delta-stepping") {
    opts.sssp_kernel = core::SsspKernel::kDeltaStepping;
  } else if (kernel == "bellman-ford") {
    opts.sssp_kernel = core::SsspKernel::kBellmanFord;
  } else {
    throw Error("unknown --sssp-kernel: " + kernel);
  }
  const std::string partitioner = args.get_or("partitioner", "kway");
  if (partitioner == "kway") {
    opts.partition_method = part::Method::kMultilevelKway;
  } else if (partitioner == "rb") {
    opts.partition_method = part::Method::kRecursiveBisection;
  } else {
    throw Error("unknown --partitioner: " + partitioner);
  }

  sim::TraceRecorder trace;
  if (args.has("trace")) opts.trace = &trace;

  sim::FaultPlan faults;
  faults.seed = static_cast<std::uint64_t>(args.get_int_or("fault-seed", 1));
  faults.p_h2d = args.get_double_or("fault-h2d", 0.0);
  faults.p_d2h = args.get_double_or("fault-d2h", 0.0);
  faults.p_kernel = args.get_double_or("fault-kernel", 0.0);
  faults.p_alloc = args.get_double_or("fault-alloc", 0.0);
  faults.p_decode = args.get_double_or("fault-decode", 0.0);
  if (const auto kill = args.get("kill-device"); kill.has_value()) {
    const auto colon = kill->find(':');
    GAPSP_CHECK(colon != std::string::npos,
                "expected --kill-device D:NTHOP but got " + *kill);
    faults.kill_device = static_cast<int>(std::stoll(kill->substr(0, colon)));
    faults.kill_at_op = std::stoll(kill->substr(colon + 1));
  }
  const bool any_faults = faults.p_h2d > 0 || faults.p_d2h > 0 ||
                          faults.p_kernel > 0 || faults.p_alloc > 0 ||
                          faults.p_decode > 0 || faults.kill_device >= 0;
  if (any_faults) opts.faults = &faults;
  opts.retry.max_retries = static_cast<int>(args.get_int_or("retries", 3));
  opts.kernel_variant =
      core::parse_kernel_variant(args.get_or("kernel-variant", "auto"));
  opts.kernel_threads =
      static_cast<int>(args.get_int_or("kernel-threads", 0));
  opts.checkpoint_path = args.get_or("checkpoint", "");
  opts.resume = args.has("resume");
  const double store_ratio = args.get_double_or("store-ratio", 1.0);
  GAPSP_CHECK(store_ratio >= 1.0, "--store-ratio must be >= 1");
  opts.store_bytes_per_element = sizeof(dist_t) / store_ratio;

  core::SelectorOptions sel;
  sel.sparse_percent = args.get_double_or("sparse-threshold", 0.8);
  sel.dense_percent = args.get_double_or("dense-threshold", 4.0);

  // A checkpoint sidecar only records *progress*; the completed rounds live
  // in the distance store. Across processes that store must be durable — a
  // RAM store dies with the killed run, and resuming against a fresh one
  // would silently continue from an uninitialized matrix.
  GAPSP_CHECK(opts.checkpoint_path.empty() ||
                  args.get_or("store", "ram") == "file",
              "--checkpoint/--resume need a durable store: add "
              "--store file --store-path P (the file is kept across runs)");
  const std::string store_path = args.get_or("store-path", "apsp_dist.bin");
  std::unique_ptr<core::DistStore> store;
  if (args.get_or("store", "ram") == "file") {
    // With a checkpoint in play the store must survive both the interrupted
    // run (exception unwinds this unique_ptr) and the resume run.
    const bool keep = args.has("keep-store") || !opts.checkpoint_path.empty();
    store = core::make_file_store(g.num_vertices(), store_path, keep);
    // A serving/resuming setup keeps state next to the store: reuse the
    // calibration sidecar a previous run saved so the selector's warm-up
    // solves are skipped.
    if (core::load_calibration(opts, store_path + ".cal")) {
      std::cout << "calibration: reused " << store_path << ".cal\n";
    }
  } else {
    store = core::make_ram_store(g.num_vertices());
  }

  core::SelectorReport report;
  core::ApspResult r;
  const int devices = static_cast<int>(args.get_int_or("devices", 1));
  if (devices > 1) {
    // Multi-GPU path (boundary algorithm only).
    auto multi = core::ooc_boundary_multi(g, opts, devices, *store);
    std::cout << "multi-GPU boundary: " << devices << " devices, makespan "
              << multi.result.metrics.sim_seconds * 1e3 << " ms\n";
    if (!multi.multi.failed_devices.empty()) {
      std::cout << "failover:";
      for (int d : multi.multi.failed_devices) {
        std::cout << " device " << d << " lost;";
      }
      std::cout << " " << multi.multi.failover_components
                << " components re-run on survivors ("
                << multi.multi.failover_cost_s * 1e3 << " ms)\n";
    }
    r = std::move(multi.result);
  } else if (args.has("per-component")) {
    auto comp = core::solve_apsp_per_component(g, opts, *store, sel);
    std::cout << "per-component: " << comp.num_components
              << " components, largest " << comp.largest_component << "\n";
    r = std::move(comp.result);
  } else {
    r = core::solve_apsp(g, opts, *store, &report, sel);
  }

  std::cout << "algorithm: " << core::algorithm_name(r.used);
  if (opts.algorithm == core::Algorithm::kAuto && devices == 1 &&
      !args.has("per-component")) {
    std::cout << " (selected; density " << report.density_percent << "%)";
  }
  std::cout << "\nsimulated time: " << r.metrics.sim_seconds * 1e3
            << " ms (kernels " << r.metrics.kernel_seconds * 1e3
            << " ms, transfers " << r.metrics.transfer_seconds * 1e3
            << " ms)\ntransfer overlap: "
            << r.metrics.hidden_transfer_seconds * 1e3 << " ms hidden, "
            << r.metrics.exposed_transfer_seconds * 1e3 << " ms exposed\n";
  const std::size_t wire_raw =
      r.metrics.bytes_h2d_raw + r.metrics.bytes_d2h_raw;
  const std::size_t wire = r.metrics.bytes_h2d_wire + r.metrics.bytes_d2h_wire;
  if (wire > 0) {
    std::cout << "transfer compression: " << (wire_raw >> 10) << " KiB -> "
              << (wire >> 10) << " KiB on the wire ("
              << static_cast<double>(wire_raw) / static_cast<double>(wire)
              << "x), decode busy " << r.metrics.decode_seconds * 1e3
              << " ms in " << r.metrics.decodes << " kernels\n";
  }
  std::cout << "device traffic: "
            << (r.metrics.bytes_h2d >> 10) << " KiB h2d in "
            << r.metrics.transfers_h2d << " transfers, "
            << (r.metrics.bytes_d2h >> 10) << " KiB d2h in "
            << r.metrics.transfers_d2h << " transfers\n"
            << "device peak memory: " << (r.metrics.device_peak_bytes >> 10)
            << " KiB of " << (opts.device.memory_bytes >> 10) << " KiB";
  if (r.metrics.pinned_peak_bytes > 0) {
    std::cout << " (+" << (r.metrics.pinned_peak_bytes >> 10)
              << " KiB pinned staging)";
  }
  std::cout << "\n";
  if (!r.metrics.kernel_variant.empty()) {
    std::cout << "kernel engine: " << r.metrics.kernel_variant
              << " microkernel, "
              << (opts.kernel_threads == 1
                      ? std::string("serial")
                      : opts.kernel_threads == 0
                            ? std::string("pooled")
                            : std::to_string(opts.kernel_threads) +
                                  "-thread")
              << " grid execution";
    const core::KernelTuning tuning = core::kernel_tuning();
    if (tuning.measured) {
      std::cout << " (" << core::simd_lane_isa() << " lanes, "
                << std::fixed << std::setprecision(2)
                << core::kernel_variant_rel_speed(
                       core::parse_kernel_variant(r.metrics.kernel_variant))
                << "x vs naive)";
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }
  if (r.metrics.johnson_batch_size > 0) {
    std::cout << "johnson: bat=" << r.metrics.johnson_batch_size << ", "
              << r.metrics.johnson_num_batches << " batches, "
              << r.metrics.child_kernels << " child kernels\n";
  }
  if (r.metrics.boundary_k > 0) {
    std::cout << "boundary: k=" << r.metrics.boundary_k << ", "
              << r.metrics.boundary_nodes << " boundary vertices\n";
  }
  if (r.metrics.faults_injected > 0 || r.metrics.degradations > 0) {
    std::cout << "recovery: " << r.metrics.faults_injected
              << " faults injected, " << r.metrics.transfer_retries
              << " transfer retries, " << r.metrics.kernel_retries
              << " kernel retries, " << r.metrics.decode_retries
              << " decode retries ("
              << r.metrics.retry_backoff_seconds * 1e3 << " ms backoff), "
              << r.metrics.degradations << " degradations\n";
  }
  if (r.metrics.checkpoints_written > 0 || r.metrics.resumed_progress > 0) {
    std::cout << "checkpoint: " << r.metrics.checkpoints_written
              << " written, resumed past " << r.metrics.resumed_progress
              << " completed units\n";
  }

  if (const auto q = args.get("query"); q.has_value()) {
    std::istringstream qs(*q);
    std::string item;
    while (std::getline(qs, item, ';')) {
      const auto [u, v] = parse_pair(item);
      const dist_t d = store->at(r.stored_id(u), r.stored_id(v));
      std::cout << "dist(" << u << ", " << v << ") = ";
      if (d >= kInf) {
        std::cout << "unreachable\n";
      } else {
        std::cout << d << "\n";
      }
    }
  }
  if (const auto p = args.get("path"); p.has_value()) {
    const auto [u, v] = parse_pair(*p);
    const core::PathExtractor extractor(g, *store, r);
    const auto path = extractor.path(u, v);
    std::cout << "path(" << u << " -> " << v << "): ";
    if (path.empty()) {
      std::cout << "unreachable\n";
    } else {
      for (std::size_t i = 0; i < path.size(); ++i) {
        std::cout << (i == 0 ? "" : " -> ") << path[i];
      }
      std::cout << "  (length " << extractor.walk_length(path) << ")\n";
    }
  }
  if (args.has("verify")) {
    const auto rep = core::verify_result(g, *store, r, 8, opts.seed);
    std::cout << "verify: " << (rep.ok ? "OK" : "FAILED") << " ("
              << rep.rows_checked << " rows, " << rep.entries_checked
              << " entries)\n";
    if (!rep.ok) {
      std::cerr << rep.detail;
      return 3;
    }
  }
  if (const auto save = args.get("save"); save.has_value()) {
    core::save_distances(*store, r, *save);
    const double mib = static_cast<double>(g.num_vertices()) *
                       g.num_vertices() * sizeof(dist_t) / (1 << 20);
    std::cout << "distances: " << mib << " MiB -> " << *save << "\n";
  }
  if (args.has("keep-store") && args.get_or("store", "ram") == "file") {
    if (core::save_calibration(opts, store_path + ".cal")) {
      std::cout << "calibration: saved " << store_path << ".cal\n";
    }
    if (!args.has("no-compress-store")) {
      // The solve loop always writes the raw store (blocked FW rewrites
      // every tile O(n_d) times); compression happens here, at the sink,
      // once the matrix is final. Close the raw store first so buffered
      // writes are flushed before compaction re-reads the file.
      store.reset();
      const auto cs = core::compact_store(store_path, store_path);
      std::remove(core::checksum_sidecar_path(store_path).c_str());
      r.metrics.store_raw_bytes = static_cast<std::size_t>(cs.raw_bytes);
      r.metrics.store_compressed_bytes =
          static_cast<std::size_t>(cs.compressed_bytes);
      r.metrics.store_tiles = cs.tiles;
      r.metrics.store_inf_tiles = cs.inf_tiles;
      r.metrics.store_compact_seconds = cs.seconds;
      std::cout << "store compressed: " << (cs.raw_bytes >> 10) << " KiB -> "
                << (cs.compressed_bytes >> 10) << " KiB (" << cs.ratio()
                << "x, " << cs.inf_tiles << "/" << cs.tiles
                << " all-kInf tiles) in " << cs.seconds * 1e3 << " ms\n";
    } else {
      // The raw kept store has no framing to catch bit rot: write the
      // GAPSPSM1 checksum sidecar so the serving tier can verify every
      // cache-miss read (DESIGN.md §13). Close first to flush writes.
      store.reset();
      const auto ro = core::open_file_store(store_path);
      const auto sums = core::compute_store_checksums(*ro);
      core::write_store_checksums(sums,
                                  core::checksum_sidecar_path(store_path));
      std::cout << "store checksums: " << sums.sums.size() << " tile sums -> "
                << core::checksum_sidecar_path(store_path) << "\n";
    }
    std::cout << "store kept: " << store_path
              << " (serve it with: apsp_cli query --store-path ...)\n";
  }
  if (const auto tpath = args.get("trace"); tpath.has_value()) {
    std::ofstream out(*tpath);
    GAPSP_CHECK(out.good(), "cannot open " + *tpath);
    trace.write_chrome_trace(out);
    std::cout << "timeline: " << trace.events().size() << " events -> "
              << *tpath << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (!args.positional().empty() && args.positional().front() == "query") {
      const auto unknown = args.unknown(
          {"store-path", "point", "row", "batch", "cache-mb", "block",
           "shards", "threads", "repeat", "retries", "max-queue",
           "no-verify-sums", "repair", "generate", "input", "seed",
           "fault-store-read", "fault-seed", "route", "shard",
           "no-verify-shard", "worker-retries", "worker-timeout-ms",
           "kill-worker"});
      if (!unknown.empty()) {
        std::cerr << "unknown query flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_query(args);
    }
    if (!args.positional().empty() && args.positional().front() == "shard") {
      const auto unknown = args.unknown({"store-path", "shards", "block"});
      if (!unknown.empty()) {
        std::cerr << "unknown shard flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_shard(args);
    }
    if (!args.positional().empty() && args.positional().front() == "serve") {
      const auto unknown = args.unknown(
          {"store-path", "shard", "cache-mb", "block", "shards", "threads",
           "retries", "no-verify-shard", "exit-after"});
      if (!unknown.empty()) {
        std::cerr << "unknown serve flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_serve(args);
    }
    if (!args.positional().empty() && args.positional().front() == "scrub") {
      const auto unknown = args.unknown(
          {"store-path", "repair", "generate", "input", "seed", "retries",
           "write-sums", "block", "fault-store-read", "fault-seed"});
      if (!unknown.empty()) {
        std::cerr << "unknown scrub flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_scrub(args);
    }
    if (!args.positional().empty() && args.positional().front() == "update") {
      const auto unknown = args.unknown(
          {"store-path", "updates", "update-threshold", "checkpoint",
           "checkpoint-every", "resume", "block", "generate", "input",
           "seed", "save-graph"});
      if (!unknown.empty()) {
        std::cerr << "unknown update flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_update(args);
    }
    if (!args.positional().empty() && args.positional().front() == "info") {
      const auto unknown = args.unknown({"store-path"});
      if (!unknown.empty()) {
        std::cerr << "unknown info flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_info(args);
    }
    if (!args.positional().empty() &&
        args.positional().front() == "compact") {
      const auto unknown = args.unknown({"store-path", "out", "block"});
      if (!unknown.empty()) {
        std::cerr << "unknown compact flag(s):";
        for (const auto& f : unknown) std::cerr << " --" << f;
        std::cerr << "\n";
        return 2;
      }
      return run_compact(args);
    }
    const auto unknown = args.unknown(
        {"input", "generate", "seed", "algorithm", "device", "memory-mb",
         "components", "no-batching", "no-overlap", "no-dp",
         "sparse-threshold", "dense-threshold", "store", "store-path",
         "keep-store", "no-compress-store", "store-ratio", "query", "path",
         "trace", "stats", "sssp-kernel", "partitioner", "devices",
         "per-component", "save", "verify", "fault-seed", "fault-h2d",
         "fault-d2h", "fault-kernel", "fault-alloc", "fault-decode",
         "kill-device", "retries", "checkpoint", "resume", "kernel-variant",
         "kernel-threads", "transfer-compression"});
    if (!unknown.empty()) {
      std::cerr << "unknown flag(s):";
      for (const auto& f : unknown) std::cerr << " --" << f;
      std::cerr << "\n";
      return 2;
    }
    return run(args);
  } catch (const gapsp::CorruptError& e) {
    // Data failed an integrity check — retrying is useless; scrub instead.
    std::cerr << "corrupt store: " << e.what()
              << " (run `apsp_cli scrub --store-path ...` to locate and "
                 "repair the damage)\n";
    return 4;
  } catch (const gapsp::IoError& e) {
    // Host I/O failure (missing/truncated file, sick disk) — distinct exit
    // code so serving wrappers can tell an infrastructure fault from a
    // usage error.
    std::cerr << "io error: " << e.what()
              << " (check --store-path and that the file is readable)\n";
    return 4;
  } catch (const gapsp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
